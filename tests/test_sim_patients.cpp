// Physiological sanity of the two patient plants: steady state under basal,
// meals raise BG, insulin lowers it, overdose drives hypo, stopping insulin
// drives hyper, and all states stay finite/bounded.
#include <gtest/gtest.h>

#include "sim/types.h"

#include <cmath>
#include <memory>

#include "sim/glucosym_patient.h"
#include "sim/t1d_patient.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::sim {
namespace {

PatientProfile default_profile(int id = 0) {
  PatientProfile p;
  p.id = id;
  return p;
}

class PatientParamTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<PatientModel> make() const {
    if (GetParam() == 0) return std::make_unique<GlucosymPatient>();
    return std::make_unique<T1dPatient>();
  }
};

INSTANTIATE_TEST_SUITE_P(BothPlants, PatientParamTest, ::testing::Values(0, 1),
                         [](const auto& info) {
                           return info.param == 0 ? "Glucosym" : "T1DS2013";
                         });

TEST_P(PatientParamTest, SteadyAtBasal) {
  auto patient = make();
  util::Rng rng(1);
  PatientProfile p = default_profile();
  p.initial_bg = 120.0;
  patient->reset(p, rng);
  const double basal = patient->recommended_basal_u_per_h();
  ASSERT_GT(basal, 0.0);
  const double start = patient->bg();
  for (int i = 0; i < 48; ++i) patient->step(basal, 0.0, 5.0);  // 4 h
  EXPECT_NEAR(patient->bg(), start, 25.0) << "BG drifted off equilibrium";
}

TEST_P(PatientParamTest, MealRaisesBg) {
  auto patient = make();
  util::Rng rng(2);
  patient->reset(default_profile(), rng);
  const double basal = patient->recommended_basal_u_per_h();
  const double before = patient->bg();
  patient->step(basal, 60.0, 5.0);  // 60 g carbs
  double peak = before;
  for (int i = 0; i < 24; ++i) {  // 2 h
    patient->step(basal, 0.0, 5.0);
    peak = std::max(peak, patient->bg());
  }
  EXPECT_GT(peak, before + 25.0) << "meal should raise BG substantially";
}

TEST_P(PatientParamTest, InsulinOverdoseDrivesHypo) {
  auto patient = make();
  util::Rng rng(3);
  PatientProfile p = default_profile();
  p.initial_bg = 110.0;
  patient->reset(p, rng);
  const double basal = patient->recommended_basal_u_per_h();
  for (int i = 0; i < 72; ++i) patient->step(6.0 * basal, 0.0, 5.0);  // 6 h
  EXPECT_LT(patient->bg(), kHypoglycemiaBg)
      << "sustained 6x basal must eventually cause hypoglycemia";
}

TEST_P(PatientParamTest, StoppingInsulinDrivesHyper) {
  auto patient = make();
  util::Rng rng(4);
  PatientProfile p = default_profile();
  p.initial_bg = 130.0;
  patient->reset(p, rng);
  for (int i = 0; i < 96; ++i) patient->step(0.0, i == 24 ? 50.0 : 0.0, 5.0);
  EXPECT_GT(patient->bg(), kHyperglycemiaBg)
      << "no insulin plus a meal must eventually cause hyperglycemia";
}

TEST_P(PatientParamTest, StatesStayFiniteUnderAbuse) {
  auto patient = make();
  util::Rng rng(5);
  patient->reset(default_profile(), rng);
  for (int i = 0; i < 200; ++i) {
    const double rate = (i % 3 == 0) ? 20.0 : 0.0;
    const double carbs = (i % 17 == 0) ? 120.0 : 0.0;
    patient->step(rate, carbs, 5.0);
    EXPECT_TRUE(std::isfinite(patient->bg()));
    EXPECT_TRUE(std::isfinite(patient->iob()));
    EXPECT_GE(patient->bg(), 10.0);
    EXPECT_LE(patient->bg(), 600.0);
    EXPECT_GE(patient->iob(), 0.0);
  }
}

TEST_P(PatientParamTest, IobTracksDelivery) {
  auto patient = make();
  util::Rng rng(6);
  patient->reset(default_profile(), rng);
  const double basal = patient->recommended_basal_u_per_h();
  const double iob_basal = patient->iob();
  for (int i = 0; i < 12; ++i) patient->step(basal * 4.0, 0.0, 5.0);
  EXPECT_GT(patient->iob(), iob_basal * 1.5) << "IOB must rise under 4x basal";
  for (int i = 0; i < 48; ++i) patient->step(0.0, 0.0, 5.0);
  EXPECT_LT(patient->iob(), iob_basal) << "IOB must decay when pump stops";
}

TEST_P(PatientParamTest, ResetIsDeterministicGivenSameRng) {
  auto a = make();
  auto b = make();
  util::Rng r1(7), r2(7);
  a->reset(default_profile(), r1);
  b->reset(default_profile(), r2);
  for (int i = 0; i < 20; ++i) {
    a->step(1.0, i == 5 ? 40.0 : 0.0, 5.0);
    b->step(1.0, i == 5 ? 40.0 : 0.0, 5.0);
  }
  EXPECT_DOUBLE_EQ(a->bg(), b->bg());
  EXPECT_DOUBLE_EQ(a->iob(), b->iob());
}

TEST_P(PatientParamTest, RejectsInvalidInputs) {
  auto patient = make();
  util::Rng rng(8);
  patient->reset(default_profile(), rng);
  EXPECT_THROW(patient->step(-1.0, 0.0, 5.0), cpsguard::ContractViolation);
  EXPECT_THROW(patient->step(1.0, -5.0, 5.0), cpsguard::ContractViolation);
  EXPECT_THROW(patient->step(1.0, 0.0, 0.0), cpsguard::ContractViolation);
}

TEST(GlucosymPatient, PlasmaInsulinRespondsToInfusion) {
  GlucosymPatient patient;
  util::Rng rng(9);
  patient.reset(default_profile(), rng);
  const double before = patient.plasma_insulin();
  for (int i = 0; i < 12; ++i) patient.step(5.0, 0.0, 5.0);
  EXPECT_GT(patient.plasma_insulin(), before);
}

TEST(T1dPatient, EquilibriumBasalIsPlausible) {
  T1dPatient patient;
  util::Rng rng(10);
  PatientProfile p = default_profile();
  patient.reset(p, rng);
  const double basal = patient.recommended_basal_u_per_h();
  EXPECT_GT(basal, 0.05);
  EXPECT_LT(basal, 4.0);
}

TEST(InsulinOnBoard, EquilibriumMatchesAnalyticValue) {
  InsulinOnBoard iob(60.0);
  const double rate = 1.2;
  iob.reset(0.0);
  for (int i = 0; i < 2000; ++i) iob.step(rate, 5.0);
  EXPECT_NEAR(iob.value(), iob.equilibrium(rate), 1e-6);
}

TEST(InsulinOnBoard, HalfLifeDecay) {
  InsulinOnBoard iob(60.0);
  iob.reset(4.0);
  iob.step(1e-12, 60.0);  // one half-life with (effectively) no delivery
  EXPECT_NEAR(iob.value(), 2.0, 0.01);
}

TEST(Profiles, GeneratorsAreDeterministicAndDistinct) {
  const auto a = glucosym_profiles(20, 5);
  const auto b = glucosym_profiles(20, 5);
  const auto c = glucosym_profiles(20, 6);
  ASSERT_EQ(a.size(), 20u);
  EXPECT_DOUBLE_EQ(a[3].weight_kg, b[3].weight_kg);
  EXPECT_NE(a[3].weight_kg, c[3].weight_kg);
  // Patients differ from each other.
  EXPECT_NE(a[0].weight_kg, a[1].weight_kg);
}

TEST(Profiles, T1dDistributionDiffersFromGlucosym) {
  const auto g = glucosym_profiles(20, 5);
  const auto t = t1d_profiles(20, 5);
  double gw = 0.0, tw = 0.0;
  for (int i = 0; i < 20; ++i) {
    gw += g[static_cast<std::size_t>(i)].weight_kg;
    tw += t[static_cast<std::size_t>(i)].weight_kg;
  }
  // T1D cohort is heavier by construction (different data distribution).
  EXPECT_GT(tw / 20.0, gw / 20.0);
}

TEST(Profiles, ParametersWithinDocumentedRanges) {
  for (const auto& p : glucosym_profiles(20, 11)) {
    EXPECT_GE(p.weight_kg, 55.0);
    EXPECT_LE(p.weight_kg, 95.0);
    EXPECT_GE(p.basal_u_per_h, 0.7);
    EXPECT_LE(p.basal_u_per_h, 1.6);
    EXPECT_GT(p.p1, 0.0);
    EXPECT_GT(p.p3, 0.0);
  }
}


TEST_P(PatientParamTest, CalibratedProfileWithinClinicalRanges) {
  auto patient = make();
  util::Rng rng(20);
  patient->reset(default_profile(), rng);
  const PatientProfile cal = patient->effective_profile();
  EXPECT_GE(cal.isf_mg_dl_per_u, 5.0);
  EXPECT_LE(cal.isf_mg_dl_per_u, 300.0);
  EXPECT_GE(cal.carb_ratio_g_per_u, 2.0);
  EXPECT_LE(cal.carb_ratio_g_per_u, 150.0);
}

TEST_P(PatientParamTest, CalibratedIsfPredictsBolusEffect) {
  // A 1 U bolus on top of basal should drop BG by roughly the calibrated
  // ISF within 4 hours (the calibration probe's own definition, re-run
  // through the public stepping API).
  auto patient = make();
  auto reference = make();
  util::Rng r1(21), r2(21);
  patient->reset(default_profile(), r1);
  reference->reset(default_profile(), r2);
  const PatientProfile cal = patient->effective_profile();
  const double basal = patient->recommended_basal_u_per_h();

  patient->step(basal + 12.0, 0.0, 5.0);  // +1 U over 5 min
  reference->step(basal, 0.0, 5.0);
  for (int i = 1; i < 48; ++i) {
    patient->step(basal, 0.0, 5.0);
    reference->step(basal, 0.0, 5.0);
  }
  const double observed_drop = reference->bg() - patient->bg();
  EXPECT_NEAR(observed_drop, cal.isf_mg_dl_per_u,
              0.35 * cal.isf_mg_dl_per_u + 5.0);
}

TEST_P(PatientParamTest, CalibrationIsDeterministic) {
  auto a = make();
  auto b = make();
  util::Rng r1(22), r2(22);
  a->reset(default_profile(), r1);
  b->reset(default_profile(), r2);
  EXPECT_DOUBLE_EQ(a->effective_profile().isf_mg_dl_per_u,
                   b->effective_profile().isf_mg_dl_per_u);
  EXPECT_DOUBLE_EQ(a->effective_profile().carb_ratio_g_per_u,
                   b->effective_profile().carb_ratio_g_per_u);
}

}  // namespace
}  // namespace cpsguard::sim

#include "core/online_monitor.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "monitor/features.h"
#include "util/contracts.h"

namespace cpsguard::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

class OnlineMonitorTest : public ::testing::Test {
 protected:
  OnlineMonitorTest() : exp_(tiny_config()) {}

  Experiment exp_;
  const MonitorVariant mlp_{monitor::Arch::kMlp, false};
};

TEST_F(OnlineMonitorTest, NotReadyUntilWindowFills) {
  auto& mon = exp_.monitor(mlp_);
  const int window = exp_.config().dataset.window;
  OnlineMonitor online(mon, window);
  const sim::Trace& trace = exp_.test_traces().front();
  for (int t = 0; t < window - 1; ++t) {
    const auto v = online.step(trace.steps[static_cast<std::size_t>(t)]);
    EXPECT_FALSE(v.ready) << "cycle " << t;
  }
  const auto v = online.step(trace.steps[static_cast<std::size_t>(window - 1)]);
  EXPECT_TRUE(v.ready);
  EXPECT_GE(v.p_unsafe, 0.0);
  EXPECT_LE(v.p_unsafe, 1.0);
}

TEST_F(OnlineMonitorTest, MatchesBatchPredictionsExactly) {
  // Streaming the trace must reproduce the offline windowed predictions.
  auto& mon = exp_.monitor(mlp_);
  const auto& test = exp_.test_data();
  const auto batch_preds = mon.predict(test.x);

  const int window = test.config.window;
  for (std::size_t tr = 0; tr < exp_.test_traces().size() && tr < 2; ++tr) {
    const sim::Trace& trace = exp_.test_traces()[tr];
    OnlineMonitor online(mon, window);
    for (int t = 0; t < trace.length(); ++t) {
      const auto v = online.step(trace.steps[static_cast<std::size_t>(t)]);
      if (!v.ready) continue;
      // Find the dataset window for (trace tr, end step t).
      for (int i = 0; i < test.size(); ++i) {
        const auto si = static_cast<std::size_t>(i);
        if (test.trace_id[si] == static_cast<int>(tr) && test.step_index[si] == t) {
          EXPECT_EQ(v.prediction, batch_preds[si])
              << "trace " << tr << " step " << t;
        }
      }
    }
  }
}

TEST_F(OnlineMonitorTest, ResetForgetsHistory) {
  auto& mon = exp_.monitor(mlp_);
  const int window = exp_.config().dataset.window;
  OnlineMonitor online(mon, window);
  const sim::Trace& trace = exp_.test_traces().front();
  for (int t = 0; t < window; ++t) {
    online.step(trace.steps[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(online.cycles_seen(), window);
  online.reset();
  EXPECT_EQ(online.cycles_seen(), 0);
  const auto v = online.step(trace.steps[0]);
  EXPECT_FALSE(v.ready);
}

TEST_F(OnlineMonitorTest, RejectsUntrainedMonitorAndBadWindow) {
  monitor::MonitorConfig mc;
  monitor::MlMonitor untrained(mc);
  EXPECT_THROW(OnlineMonitor(untrained, 6), ContractViolation);
  auto& mon = exp_.monitor(mlp_);
  EXPECT_THROW(OnlineMonitor(mon, 0), ContractViolation);
}

}  // namespace
}  // namespace cpsguard::core

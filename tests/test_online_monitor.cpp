#include "core/online_monitor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/experiment.h"
#include "monitor/features.h"
#include "util/contracts.h"

// Allocation-regression instrumentation: replace the global allocation
// functions with counting shims so tests can pin "this path does not touch
// the heap". Counting is per-thread, so pool workers and test framework
// bookkeeping on other threads never pollute a measurement.
namespace {
thread_local std::uint64_t t_alloc_count = 0;

void* counted_alloc(std::size_t n) {
  ++t_alloc_count;
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace cpsguard::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

class OnlineMonitorTest : public ::testing::Test {
 protected:
  OnlineMonitorTest() : exp_(tiny_config()) {}

  Experiment exp_;
  const MonitorVariant mlp_{monitor::Arch::kMlp, false};
};

TEST_F(OnlineMonitorTest, NotReadyUntilWindowFills) {
  auto& mon = exp_.monitor(mlp_);
  const int window = exp_.config().dataset.window;
  OnlineMonitor online(mon, window);
  const sim::Trace& trace = exp_.test_traces().front();
  for (int t = 0; t < window - 1; ++t) {
    const auto v = online.step(trace.steps[static_cast<std::size_t>(t)]);
    EXPECT_FALSE(v.ready) << "cycle " << t;
  }
  const auto v = online.step(trace.steps[static_cast<std::size_t>(window - 1)]);
  EXPECT_TRUE(v.ready);
  EXPECT_GE(v.p_unsafe, 0.0);
  EXPECT_LE(v.p_unsafe, 1.0);
}

TEST_F(OnlineMonitorTest, MatchesBatchPredictionsExactly) {
  // Streaming the trace must reproduce the offline windowed predictions.
  auto& mon = exp_.monitor(mlp_);
  const auto& test = exp_.test_data();
  const auto batch_preds = mon.predict(test.x);

  const int window = test.config.window;
  for (std::size_t tr = 0; tr < exp_.test_traces().size() && tr < 2; ++tr) {
    const sim::Trace& trace = exp_.test_traces()[tr];
    OnlineMonitor online(mon, window);
    for (int t = 0; t < trace.length(); ++t) {
      const auto v = online.step(trace.steps[static_cast<std::size_t>(t)]);
      if (!v.ready) continue;
      // Find the dataset window for (trace tr, end step t).
      for (int i = 0; i < test.size(); ++i) {
        const auto si = static_cast<std::size_t>(i);
        if (test.trace_id[si] == static_cast<int>(tr) && test.step_index[si] == t) {
          EXPECT_EQ(v.prediction, batch_preds[si])
              << "trace " << tr << " step " << t;
        }
      }
    }
  }
}

TEST_F(OnlineMonitorTest, ResetForgetsHistory) {
  auto& mon = exp_.monitor(mlp_);
  const int window = exp_.config().dataset.window;
  OnlineMonitor online(mon, window);
  const sim::Trace& trace = exp_.test_traces().front();
  for (int t = 0; t < window; ++t) {
    online.step(trace.steps[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(online.cycles_seen(), window);
  online.reset();
  EXPECT_EQ(online.cycles_seen(), 0);
  const auto v = online.step(trace.steps[0]);
  EXPECT_FALSE(v.ready);
}

TEST_F(OnlineMonitorTest, WindowingPathDoesNotAllocate) {
  // Regression pin for the old deque-of-vectors window: every step()
  // heap-allocated a fresh feature row (and, once ready, a Tensor3) and
  // re-copied the whole window. With the ring buffer the pre-inference
  // windowing path must not allocate at all.
  auto& mon = exp_.monitor(mlp_);
  const int window = exp_.config().dataset.window;
  OnlineMonitor online(mon, window);
  const sim::Trace& trace = exp_.test_traces().front();
  ASSERT_GE(trace.length(), window);
  // Exercise once (fills the ring through a wrap), then measure a second
  // pass over the same preallocated state.
  for (int t = 0; t < window - 1; ++t) {
    online.step(trace.steps[static_cast<std::size_t>(t)]);
  }
  online.reset();
  const std::uint64_t before = t_alloc_count;
  for (int t = 0; t < window - 1; ++t) {
    online.step(trace.steps[static_cast<std::size_t>(t)]);
  }
  const std::uint64_t allocs = t_alloc_count - before;
  EXPECT_EQ(allocs, 0u)
      << "OnlineMonitor::step allocated on the windowing path";
  // reset() must release nothing either (capacity is retained).
  const std::uint64_t before_reset = t_alloc_count;
  online.reset();
  EXPECT_EQ(t_alloc_count - before_reset, 0u);
}

TEST_F(OnlineMonitorTest, RejectsUntrainedMonitorAndBadWindow) {
  monitor::MonitorConfig mc;
  monitor::MlMonitor untrained(mc);
  EXPECT_THROW(OnlineMonitor(untrained, 6), ContractViolation);
  auto& mon = exp_.monitor(mlp_);
  EXPECT_THROW(OnlineMonitor(mon, 0), ContractViolation);
}

}  // namespace
}  // namespace cpsguard::core

// Golden determinism-regression suite (ctest label: golden).
//
// Miniature (2-patient, short-horizon) versions of the fig5 / fig8 / fig10 /
// resilience pipelines run twice — fully serial (max_parallelism = 1) and on
// the shared pool — and must produce byte-identical CSV bytes, which must in
// turn match the checked-in goldens in tests/golden/ (compared both as bytes
// and as SHA-256, the same fingerprint the bench manifests record).
//
// Re-blessing after an *intentional* output change (see EXPERIMENTS.md):
//   CPSGUARD_BLESS=1 ./build/tests/test_golden_outputs
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "core/experiment.h"
#include "obs/sha256.h"
#include "util/csv.h"
#include "util/thread_pool.h"

#ifndef CPSGUARD_GOLDEN_DIR
#define CPSGUARD_GOLDEN_DIR "tests/golden"
#endif

namespace cpsguard {
namespace {

namespace fs = std::filesystem;

core::ExperimentConfig mini_config(sim::Testbed tb) {
  core::ExperimentConfig cfg;
  cfg.campaign.testbed = tb;
  cfg.campaign.patients = 2;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 7;
  cfg.epochs = 2;
  cfg.cache_dir = "";  // never reuse models across parallelism modes
  return cfg;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) ADD_FAILURE() << "missing golden " << p;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Run `pipeline` serially and on the shared pool; the two CSV outputs must
/// be byte-identical. Then compare against (or, under CPSGUARD_BLESS=1,
/// rewrite) tests/golden/<name>.csv.
void check_golden(const std::string& name,
                  const std::function<std::string()>& pipeline) {
  util::set_max_parallelism(1);
  const std::string serial = pipeline();
  util::set_max_parallelism(0);
  const std::string pooled = pipeline();
  ASSERT_EQ(serial, pooled)
      << name << ": serial and shared-pool runs diverged — a parallel "
      << "reduction or RNG split is order-dependent";

  const fs::path golden = fs::path(CPSGUARD_GOLDEN_DIR) / (name + ".csv");
  if (std::getenv("CPSGUARD_BLESS") != nullptr) {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    out << serial;
    GTEST_SKIP() << "blessed " << golden;
  }
  const std::string expected = slurp(golden);
  EXPECT_EQ(obs::sha256_hex(serial), obs::sha256_hex(expected))
      << name << ": output drifted from " << golden
      << " (re-bless with CPSGUARD_BLESS=1 if the change is intentional)";
  EXPECT_EQ(serial, expected);
}

std::string fig5_mini() {
  core::Experiment exp(mini_config(sim::Testbed::kGlucosymOpenAps));
  util::CsvWriter csv({"model", "sigma", "f1", "acc"});
  const std::vector<double> sigmas = {0.25, 1.0};
  for (const auto& v : {core::MonitorVariant{monitor::Arch::kMlp, false},
                        core::MonitorVariant{monitor::Arch::kMlp, true}}) {
    const auto clean = exp.evaluate_clean(v);
    csv.add_row({v.name(), "0", util::CsvWriter::num(clean.f1()),
                 util::CsvWriter::num(clean.accuracy())});
    const auto sweep = exp.evaluate_under_gaussian_sweep(v, sigmas);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      csv.add_row({v.name(), util::CsvWriter::num(sigmas[i]),
                   util::CsvWriter::num(sweep[i].f1()),
                   util::CsvWriter::num(sweep[i].accuracy())});
    }
  }
  return csv.to_string();
}

std::string fig8_mini() {
  core::Experiment exp(mini_config(sim::Testbed::kT1dBasalBolus));
  util::CsvWriter csv({"model", "epsilon", "f1", "robustness_error"});
  const std::vector<double> epsilons = {0.05, 0.2};
  for (const auto& v : {core::MonitorVariant{monitor::Arch::kMlp, false},
                        core::MonitorVariant{monitor::Arch::kLstm, false}}) {
    const auto sweep = exp.evaluate_under_fgsm_sweep(v, epsilons);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      csv.add_row({v.name(), util::CsvWriter::num(epsilons[i]),
                   util::CsvWriter::num(sweep[i].f1()),
                   util::CsvWriter::num(sweep[i].robustness_err)});
    }
  }
  return csv.to_string();
}

std::string fig10_mini() {
  core::Experiment exp(mini_config(sim::Testbed::kGlucosymOpenAps));
  util::CsvWriter csv({"model", "epsilon", "blackbox_error", "whitebox_error"});
  const std::vector<double> epsilons = {0.1};
  const core::MonitorVariant v{monitor::Arch::kMlp, false};
  const auto blacks = exp.evaluate_under_blackbox_sweep(v, epsilons);
  const auto whites = exp.evaluate_under_fgsm_sweep(v, epsilons);
  for (std::size_t i = 0; i < epsilons.size(); ++i) {
    csv.add_row({v.name(), util::CsvWriter::num(epsilons[i]),
                 util::CsvWriter::num(blacks[i].robustness_err),
                 util::CsvWriter::num(whites[i].robustness_err)});
  }
  return csv.to_string();
}

std::string resilience_mini() {
  core::Experiment exp(mini_config(sim::Testbed::kGlucosymOpenAps));
  core::ResilienceEvalConfig rc;
  rc.runtime.window = exp.config().dataset.window;
  util::CsvWriter csv({"runtime", "fault", "rate", "availability",
                       "time_in_fallback", "f1_overall"});
  const core::MonitorVariant v{monitor::Arch::kMlp, false};
  for (const auto mode :
       {core::RuntimeMode::kRawMl, core::RuntimeMode::kResilient}) {
    const auto r = exp.evaluate_resilience(
        v, mode, sim::FaultType::kSensorGarbage, 0.5, rc);
    csv.add_row({core::to_string(mode), sim::to_string(sim::FaultType::kSensorGarbage),
                 util::CsvWriter::num(0.5), util::CsvWriter::num(r.availability()),
                 util::CsvWriter::num(r.time_in_fallback()),
                 util::CsvWriter::num(r.overall.f1())});
  }
  return csv.to_string();
}

TEST(Golden, Fig5GaussianMini) { check_golden("fig5_mini", fig5_mini); }
TEST(Golden, Fig8FgsmMini) { check_golden("fig8_mini", fig8_mini); }
TEST(Golden, Fig10BlackboxMini) { check_golden("fig10_mini", fig10_mini); }
TEST(Golden, ResilienceMini) { check_golden("resilience_mini", resilience_mini); }

}  // namespace
}  // namespace cpsguard

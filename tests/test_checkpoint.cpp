#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/chaos.h"

namespace cpsguard::core {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Pin chaos off (restored in TearDown): these tests inject their own
    // precise damage, and the exact-count stats assertions below must hold
    // even when the suite runs under CPSGUARD_CHAOS=1.
    saved_chaos_ = util::chaos().config();
    util::chaos().configure(util::ChaosConfig{});
    dir_ = (fs::temp_directory_path() /
            ("cpsguard_ckpt_test_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    util::chaos().configure(saved_chaos_);
  }

  /// The store's record files (meta excluded).
  std::vector<std::string> record_files() const {
    std::vector<std::string> out;
    for (const auto& e : fs::directory_iterator(dir_)) {
      if (e.path().extension() == ".ckpt") out.push_back(e.path().string());
    }
    return out;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  static void spew(const std::string& path, const std::string& data) {
    std::ofstream(path, std::ios::binary) << data;
  }

  std::string dir_;
  util::ChaosConfig saved_chaos_;
};

TEST_F(CheckpointTest, RoundtripsTextPayload) {
  CheckpointStore store(dir_);
  store.put("sweep|gaussian|0", "eval|tp=1|fp=2|tn=3|fn=4");
  const auto got = store.get("sweep|gaussian|0");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "eval|tp=1|fp=2|tn=3|fn=4");
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.stats().hits, 1u);
}

TEST_F(CheckpointTest, RoundtripsBinaryPayloadWithNulsAndNewlines) {
  CheckpointStore store(dir_);
  std::string payload = "model\n\nsnapshot";
  payload.push_back('\0');
  payload += "\xff\x01 tail\n";
  store.put("model|MLP", payload);
  const auto got = store.get("model|MLP");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST_F(CheckpointTest, MissingKeyIsAMiss) {
  CheckpointStore store(dir_);
  EXPECT_FALSE(store.get("never-stored").has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_FALSE(store.contains("never-stored"));
}

TEST_F(CheckpointTest, OverwriteReplacesPayload) {
  CheckpointStore store(dir_);
  store.put("k", "first");
  store.put("k", "second");
  const auto got = store.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "second");
  EXPECT_EQ(record_files().size(), 1u);
}

TEST_F(CheckpointTest, TruncatedRecordIsDiscardedAndDeleted) {
  CheckpointStore store(dir_);
  store.put("k", "a payload long enough to truncate meaningfully");
  const auto files = record_files();
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0], fs::file_size(files[0]) / 2);

  EXPECT_FALSE(store.get("k").has_value());
  EXPECT_EQ(store.stats().discarded, 1u);
  EXPECT_TRUE(record_files().empty());  // invalid record removed

  // The caller's recompute-and-re-put heals the store.
  store.put("k", "recomputed");
  const auto got = store.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "recomputed");
}

TEST_F(CheckpointTest, FlippedPayloadByteIsDiscarded) {
  CheckpointStore store(dir_);
  store.put("k", "payload-payload-payload");
  const auto files = record_files();
  ASSERT_EQ(files.size(), 1u);
  std::string bytes = slurp(files[0]);
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x5a);
  spew(files[0], bytes);

  EXPECT_FALSE(store.get("k").has_value());
  EXPECT_EQ(store.stats().discarded, 1u);
}

TEST_F(CheckpointTest, DamagedHeaderIsDiscarded) {
  CheckpointStore store(dir_);
  store.put("k", "payload");
  const auto files = record_files();
  ASSERT_EQ(files.size(), 1u);
  std::string bytes = slurp(files[0]);
  bytes[0] = 'X';  // schema line no longer matches
  spew(files[0], bytes);
  EXPECT_FALSE(store.get("k").has_value());
  EXPECT_EQ(store.stats().discarded, 1u);
}

TEST_F(CheckpointTest, RecordsSurviveReopen) {
  {
    CheckpointStore store(dir_);
    store.put("k", "persisted");
  }
  CheckpointStore reopened(dir_);
  const auto got = reopened.get("k");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "persisted");
}

TEST_F(CheckpointTest, ReopenChainsLineage) {
  std::string first_id;
  {
    CheckpointStore store(dir_);
    first_id = store.run_id();
    EXPECT_FALSE(first_id.empty());
    EXPECT_TRUE(store.parent_run_id().empty());  // fresh store
  }
  CheckpointStore resumed(dir_);
  EXPECT_EQ(resumed.parent_run_id(), first_id);
  EXPECT_NE(resumed.run_id(), first_id);
}

TEST_F(CheckpointTest, DamagedMetaDegradesToFreshLineage) {
  {
    CheckpointStore store(dir_);
    store.put("k", "still readable");
  }
  spew(dir_ + "/_store_meta", "not a meta record at all");
  CheckpointStore store(dir_);
  EXPECT_TRUE(store.parent_run_id().empty());
  // Records are untouched by meta damage.
  EXPECT_TRUE(store.get("k").has_value());
}

}  // namespace
}  // namespace cpsguard::core

#include "safety/rule_coverage.h"

#include <gtest/gtest.h>

#include "sim/closed_loop.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::safety {
namespace {

std::vector<sim::Trace> small_campaign() {
  std::vector<sim::Trace> traces;
  auto patient = sim::make_patient(sim::Testbed::kGlucosymOpenAps);
  auto controller = sim::make_controller(sim::Testbed::kGlucosymOpenAps);
  const auto profiles =
      sim::testbed_profiles(sim::Testbed::kGlucosymOpenAps, 2, 5);
  util::Rng rng(9);
  for (int i = 0; i < 6; ++i) {
    sim::SimConfig cfg;
    cfg.steps = 80;
    cfg.inject_fault = i % 2 == 0;
    traces.push_back(run_closed_loop(*patient, *controller,
                                     profiles[static_cast<std::size_t>(i % 2)],
                                     cfg, rng));
  }
  return traces;
}

TEST(RuleCoverage, OneEntryPerRuleWithConsistentCounts) {
  const auto traces = small_campaign();
  const auto stats = rule_coverage(traces, 12);
  ASSERT_EQ(stats.size(), 12u);
  long expected_steps = 0;
  for (const auto& t : traces) expected_steps += t.length();
  for (const auto& s : stats) {
    EXPECT_EQ(s.total_steps, expected_steps);
    EXPECT_LE(s.true_positives, s.fires);
    EXPECT_LE(s.fires, s.total_steps);
    EXPECT_GE(s.rule_id, 1);
    EXPECT_LE(s.rule_id, 12);
    EXPECT_FALSE(s.description.empty());
    EXPECT_GE(s.fire_rate(), 0.0);
    EXPECT_LE(s.fire_rate(), 1.0);
  }
}

TEST(RuleCoverage, SomeRuleFiresOnFaultyCampaign) {
  const auto traces = small_campaign();
  const auto stats = rule_coverage(traces, 12);
  long total_fires = 0;
  for (const auto& s : stats) total_fires += s.fires;
  EXPECT_GT(total_fires, 0) << "a faulty campaign must trip at least one rule";
}

TEST(RuleCoverage, PrecisionRecallWellDefined) {
  const auto traces = small_campaign();
  for (const auto& s : rule_coverage(traces, 12)) {
    EXPECT_GE(s.precision(), 0.0);
    EXPECT_LE(s.precision(), 1.0);
    EXPECT_GE(s.recall(), 0.0);
    EXPECT_LE(s.recall(), 1.0);
  }
}

TEST(RuleCoverage, EmptyTraceSetYieldsZeroCounts) {
  const std::vector<sim::Trace> none;
  const auto stats = rule_coverage(none, 12);
  ASSERT_EQ(stats.size(), 12u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.total_steps, 0);
    EXPECT_DOUBLE_EQ(s.fire_rate(), 0.0);
    EXPECT_DOUBLE_EQ(s.precision(), 0.0);
    EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  }
}

TEST(RuleCoverage, RejectsNegativeHorizon) {
  const std::vector<sim::Trace> none;
  EXPECT_THROW(rule_coverage(none, -1), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::safety

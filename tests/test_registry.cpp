// Model registry + artifact suite: mmap zero-copy load bit-identity against
// the freshly trained monitor (all three architectures), canonical rebuild,
// flip-a-byte corruption rejection, atomic-publish crash safety under chaos
// injection, lineage chaining, retained-version GC, and the inference-only
// contract of a bound (view-backed) monitor.
#include "registry/registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/experiment.h"
#include "registry/artifact.h"
#include "registry/model_io.h"
#include "util/chaos.h"
#include "util/contracts.h"

namespace cpsguard::registry {
namespace {

namespace fs = std::filesystem;

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class RegistryTest : public ::testing::Test {
 protected:
  RegistryTest() : exp_(tiny_config()) {
    dir_ = (fs::temp_directory_path() /
            ("cpsguard_registry_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  ~RegistryTest() override {
    util::chaos().configure(util::ChaosConfig{});  // off, for later tests
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  core::Experiment exp_;
  std::string dir_;
};

TEST_F(RegistryTest, MmapLoadIsBitIdenticalForAllArchitectures) {
  ModelRegistry reg(dir_);
  const core::MonitorVariant variants[] = {
      {monitor::Arch::kMlp, false},
      {monitor::Arch::kGru, false},
      {monitor::Arch::kLstm, false},
  };
  for (const auto& v : variants) {
    monitor::MlMonitor& trained = exp_.monitor(v);
    const std::uint64_t version = exp_.publish_monitor(v, reg);

    // Zero-copy load: the monitor's weights are views into the mmap'd
    // artifact. Probabilities must match the in-memory monitor bit for bit
    // — same scaler stream, same weight bytes, same forward path.
    const ModelRegistry::LoadedModel loaded = reg.load(version);
    const nn::Tensor3& x = exp_.test_data().x;
    const nn::Matrix expected = trained.predict_proba(x);
    const nn::Matrix got = loaded.monitor->predict_proba(x);
    EXPECT_EQ(got, expected) << v.name();

    const ModelRecord rec = reg.describe(version);
    EXPECT_EQ(rec.meta.display_name, v.name());
    EXPECT_EQ(rec.meta.config_fingerprint, exp_.config_fingerprint());
    EXPECT_EQ(rec.info.window, exp_.config().dataset.window);
  }
  EXPECT_EQ(reg.versions().size(), 3u);
}

TEST_F(RegistryTest, PublishChainsLineageAcrossVersions) {
  ModelRegistry reg(dir_);
  const core::MonitorVariant mlp{monitor::Arch::kMlp, false};
  const std::uint64_t v1 = exp_.publish_monitor(mlp, reg);
  const std::uint64_t v2 = exp_.publish_monitor(mlp, reg);
  ASSERT_EQ(v1, 1u);
  ASSERT_EQ(v2, 2u);

  const ModelRecord r1 = reg.describe(v1);
  const ModelRecord r2 = reg.describe(v2);
  EXPECT_TRUE(r1.meta.parent_run_id.empty());
  EXPECT_EQ(r2.meta.parent_run_id, r1.meta.run_id);
  EXPECT_NE(r2.meta.run_id, r1.meta.run_id);
  EXPECT_EQ(r1.sha256.size(), 64u);
}

TEST_F(RegistryTest, AcceptedArtifactRebuildsBitIdentically) {
  ModelRegistry reg(dir_);
  const core::MonitorVariant mlp{monitor::Arch::kMlp, false};
  const std::uint64_t version = exp_.publish_monitor(mlp, reg);
  const std::string path = dir_ + "/v00000001.model";
  const std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());

  const ModelArtifact art = reg.open(version);
  EXPECT_EQ(art.rebuild(), bytes);
  EXPECT_EQ(art.size_bytes(), bytes.size());
  // Publishing the same weights again must be byte-reproducible modulo the
  // meta section (fresh run id / version / lineage).
  EXPECT_EQ(ModelArtifact::parse(bytes).rebuild(), bytes);
}

TEST_F(RegistryTest, EveryFlippedByteIsATypedReject) {
  ModelRegistry reg(dir_);
  const core::MonitorVariant mlp{monitor::Arch::kMlp, false};
  (void)exp_.publish_monitor(mlp, reg);
  const std::string path = dir_ + "/v00000001.model";
  const std::string clean = read_file(path);
  ASSERT_GT(clean.size(), kModelHeaderSize + kModelShaSize);

  // Flip one byte at a stride of positions covering header, sections,
  // blobs and the SHA trailer. Every corruption must surface as the typed
  // ModelFormatError — the SHA backstops whatever the structural checks
  // miss — and never load as a subtly different model.
  std::size_t tried = 0;
  for (std::size_t pos = 0; pos < clean.size();
       pos += 1 + clean.size() / 97) {
    std::string bad = clean;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    if (bad == clean) continue;
    ++tried;
    EXPECT_THROW((void)ModelArtifact::parse(bad), ModelFormatError)
        << "byte " << pos;
    write_file(path, bad);
    EXPECT_THROW((void)reg.open(1), ModelFormatError) << "byte " << pos;
  }
  EXPECT_GE(tried, 50u);
  // Truncations, including cutting into the SHA trailer.
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{7}, kModelHeaderSize - 1,
        kModelHeaderSize, clean.size() - kModelShaSize, clean.size() - 1}) {
    EXPECT_THROW((void)ModelArtifact::parse(clean.substr(0, len)),
                 ModelFormatError)
        << "len " << len;
  }
  // Restore: the intact bytes still verify.
  write_file(path, clean);
  EXPECT_EQ(reg.open(1).file_sha256_hex(), ModelArtifact::parse(clean).file_sha256_hex());
}

TEST_F(RegistryTest, PublishSurvivesChaosFaultInjection) {
  // Chaos corrupts the published file after the atomic write; the publish
  // write-verify loop must detect it via verify-on-open and rewrite until
  // the artifact reads back verbatim. Faults are transient (one per site),
  // so the loop converges and the final artifact must be pristine.
  util::ChaosConfig chaos;
  chaos.enabled = true;
  chaos.seed = 7;
  chaos.io_fail_rate = 1.0;
  chaos.corrupt_rate = 1.0;
  util::chaos().configure(chaos);

  ModelRegistry reg(dir_);
  const core::MonitorVariant mlp{monitor::Arch::kMlp, false};
  const std::uint64_t version = exp_.publish_monitor(mlp, reg);
  util::chaos().configure(util::ChaosConfig{});

  const ModelRegistry::LoadedModel loaded = reg.load(version);
  const nn::Tensor3& x = exp_.test_data().x;
  EXPECT_EQ(loaded.monitor->predict_proba(x),
            exp_.monitor(mlp).predict_proba(x));
}

TEST_F(RegistryTest, GcRetainsNewestVersions) {
  ModelRegistry reg(dir_);
  const core::MonitorVariant mlp{monitor::Arch::kMlp, false};
  for (int i = 0; i < 3; ++i) (void)exp_.publish_monitor(mlp, reg);
  ASSERT_EQ(reg.latest(), 3u);

  const std::vector<std::uint64_t> removed = reg.gc(2);
  EXPECT_EQ(removed, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(reg.versions(), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_THROW((void)reg.open(1), CpsError);
  EXPECT_TRUE(reg.gc(2).empty());  // idempotent at the retention floor
  EXPECT_THROW((void)reg.gc(0), ContractViolation);
  // Lineage still reads after GC: v3's parent run id survives in v3's meta
  // even though v2's file is the oldest remaining.
  EXPECT_FALSE(reg.describe(3).meta.parent_run_id.empty());
}

TEST_F(RegistryTest, BoundMonitorIsInferenceOnly) {
  ModelRegistry reg(dir_);
  const core::MonitorVariant mlp{monitor::Arch::kMlp, false};
  const std::uint64_t version = exp_.publish_monitor(mlp, reg);
  const ModelRegistry::LoadedModel loaded = reg.load(version);

  // The zero-copy monitor's weights are read-only views into the mmap;
  // mutating them must trip the borrowed-matrix contract, not scribble on
  // the page cache.
  nn::Param* w = loaded.monitor->classifier().params().front();
  EXPECT_THROW(w->value.fill(0.0f), ContractViolation);

  // clone() deep-copies back into owned storage: the clone is mutable and
  // survives the artifact (and its mapping) going away.
  const auto clone = loaded.monitor->clone();
  clone->classifier().params().front()->value.fill(0.0f);
  EXPECT_NO_THROW((void)clone->predict_proba(exp_.test_data().x));
}

TEST_F(RegistryTest, MissingAndForeignVersionsAreTypedErrors) {
  ModelRegistry reg(dir_);
  EXPECT_EQ(reg.latest(), 0u);
  EXPECT_TRUE(reg.versions().empty());
  EXPECT_THROW((void)reg.open(1), CpsError);
  EXPECT_THROW((void)reg.open(0), ContractViolation);

  // Foreign files in the registry directory are ignored by the version
  // scan, never parsed.
  write_file(dir_ + "/notes.txt", "not a model");
  write_file(dir_ + "/v1.model", "bad name");
  write_file(dir_ + "/v00000000.model", "version zero is invalid");
  EXPECT_TRUE(reg.versions().empty());

  const core::MonitorVariant mlp{monitor::Arch::kMlp, false};
  (void)exp_.publish_monitor(mlp, reg);
  EXPECT_EQ(reg.versions(), (std::vector<std::uint64_t>{1}));
}

}  // namespace
}  // namespace cpsguard::registry

#include "util/retry.h"

#include <gtest/gtest.h>

#include <ios>
#include <stdexcept>

#include "obs/fileio.h"
#include "obs/metrics.h"
#include "util/deadline.h"

namespace cpsguard::util {
namespace {

std::uint64_t counter(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

TEST(RetryPolicy, DelayIsDeterministic) {
  const RetryPolicy p;
  EXPECT_DOUBLE_EQ(p.delay_ms("site", 1), p.delay_ms("site", 1));
  EXPECT_DOUBLE_EQ(p.delay_ms("site", 3), p.delay_ms("site", 3));
}

TEST(RetryPolicy, JitterVariesBySiteSeedAndAttempt) {
  RetryPolicy p;
  EXPECT_NE(p.delay_ms("site-a", 1), p.delay_ms("site-b", 1));
  EXPECT_NE(p.delay_ms("site-a", 1), p.delay_ms("site-a", 2));
  RetryPolicy q = p;
  q.seed ^= 0xdeadbeefULL;
  EXPECT_NE(p.delay_ms("site-a", 1), q.delay_ms("site-a", 1));
}

TEST(RetryPolicy, BackoffGrowsExponentiallyWithoutJitter) {
  RetryPolicy p;
  p.jitter = 0.0;
  p.base_delay_ms = 1.0;
  p.multiplier = 2.0;
  p.max_delay_ms = 50.0;
  EXPECT_DOUBLE_EQ(p.delay_ms("s", 1), 1.0);
  EXPECT_DOUBLE_EQ(p.delay_ms("s", 2), 2.0);
  EXPECT_DOUBLE_EQ(p.delay_ms("s", 3), 4.0);
}

TEST(RetryPolicy, DelayClampsToMax) {
  RetryPolicy p;
  p.max_delay_ms = 3.0;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    EXPECT_LE(p.delay_ms("s", attempt), 3.0);
    EXPECT_GE(p.delay_ms("s", attempt), 0.0);
  }
}

TEST(DefaultIsRetryable, ClassifiesKnownTransients) {
  EXPECT_TRUE(default_is_retryable(RetryableError("transient")));
  EXPECT_TRUE(default_is_retryable(obs::IoError("io")));
  EXPECT_TRUE(default_is_retryable(std::ios_base::failure("stream")));
  EXPECT_FALSE(default_is_retryable(std::runtime_error("logic-ish")));
  EXPECT_FALSE(default_is_retryable(std::logic_error("logic")));
  EXPECT_FALSE(default_is_retryable(DeadlineExceeded("no time left")));
}

TEST(RetryCall, RecoversFromTransientFailure) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.sleep = false;
  const std::uint64_t recovered_before = counter("retry.recovered");
  int calls = 0;
  retry_call(p, "test.recover", [&] {
    if (++calls < 2) throw RetryableError("flaky");
  });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(counter("retry.recovered"), recovered_before + 1);
}

TEST(RetryCall, ExhaustsAndRethrowsLastError) {
  RetryPolicy p;
  p.max_attempts = 3;
  p.sleep = false;
  const std::uint64_t exhausted_before = counter("retry.exhausted");
  int calls = 0;
  EXPECT_THROW(retry_call(p, "test.exhaust",
                          [&] {
                            ++calls;
                            throw RetryableError("always");
                          }),
               RetryableError);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(counter("retry.exhausted"), exhausted_before + 1);
}

TEST(RetryCall, NonRetryableErrorPropagatesImmediately) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.sleep = false;
  int calls = 0;
  EXPECT_THROW(retry_call(p, "test.hard",
                          [&] {
                            ++calls;
                            throw std::logic_error("bug");
                          }),
               std::logic_error);
  EXPECT_EQ(calls, 1);
}

TEST(RetryCall, DeadlineExceededIsNotRetried) {
  RetryPolicy p;
  p.max_attempts = 5;
  p.sleep = false;
  int calls = 0;
  EXPECT_THROW(retry_call(p, "test.deadline",
                          [&] {
                            ++calls;
                            throw DeadlineExceeded("over budget");
                          }),
               DeadlineExceeded);
  EXPECT_EQ(calls, 1);
}

TEST(RetryCall, SingleAttemptPolicyDisablesRetrying) {
  RetryPolicy p;
  p.max_attempts = 1;
  p.sleep = false;
  int calls = 0;
  EXPECT_THROW(retry_call(p, "test.once",
                          [&] {
                            ++calls;
                            throw RetryableError("transient");
                          }),
               RetryableError);
  EXPECT_EQ(calls, 1);
}

TEST(CurrentRetryAttempt, TracksAttemptIndexAndNesting) {
  EXPECT_EQ(current_retry_attempt(), 0);
  RetryPolicy p;
  p.max_attempts = 3;
  p.sleep = false;
  std::vector<int> seen;
  retry_call(p, "test.attempt", [&] {
    seen.push_back(current_retry_attempt());
    if (seen.size() < 3) throw RetryableError("again");
  });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(current_retry_attempt(), 0);

  // Nested retry_call restores the outer attempt index.
  retry_call(p, "outer", [&] {
    retry_call(p, "inner", [&] {
      if (current_retry_attempt() == 0) throw RetryableError("inner flake");
      EXPECT_EQ(current_retry_attempt(), 1);
    });
    EXPECT_EQ(current_retry_attempt(), 0);
  });
}

}  // namespace
}  // namespace cpsguard::util

// CUSUM detector tests — including the paper's premise: perturbations of the
// scale used in the robustness evaluation (Gaussian ≤ 1·std, FGSM-scale
// nudges) stay under a conventionally tuned CUSUM's radar, while blatant
// sensor faults are caught.
#include "safety/cusum.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cpsguard::safety {
namespace {

std::vector<double> gaussian_signal(int n, double mean, double sigma,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (double& v : out) v = rng.gaussian(mean, sigma);
  return out;
}

TEST(Cusum, QuietOnInControlSignal) {
  const auto clean = gaussian_signal(500, 10.0, 1.0, 1);
  CusumDetector det(CusumDetector::calibrate(clean));
  EXPECT_EQ(det.first_alarm(clean), -1);
}

TEST(Cusum, DetectsMeanShiftUp) {
  const auto clean = gaussian_signal(300, 10.0, 1.0, 2);
  CusumDetector det(CusumDetector::calibrate(clean));
  auto shifted = gaussian_signal(300, 10.0, 1.0, 3);
  for (std::size_t i = 100; i < shifted.size(); ++i) shifted[i] += 3.0;
  const int alarm = det.first_alarm(shifted);
  ASSERT_GE(alarm, 100);
  EXPECT_LT(alarm, 120) << "a 3-sigma shift should alarm within ~20 samples";
}

TEST(Cusum, DetectsMeanShiftDown) {
  const auto clean = gaussian_signal(300, 10.0, 1.0, 4);
  CusumDetector det(CusumDetector::calibrate(clean));
  auto shifted = gaussian_signal(300, 10.0, 1.0, 5);
  for (std::size_t i = 50; i < shifted.size(); ++i) shifted[i] -= 4.0;
  const int alarm = det.first_alarm(shifted);
  ASSERT_GE(alarm, 50);
  EXPECT_LT(alarm, 65);
}

TEST(Cusum, PaperPremiseSmallNoiseEvades) {
  // Adding zero-mean Gaussian noise with sigma' = 0.5 * signal std (the
  // middle of the paper's sweep) must NOT trip a CUSUM tuned on clean data.
  const auto clean = gaussian_signal(400, 120.0, 5.0, 6);
  CusumDetector det(CusumDetector::calibrate(clean));
  util::Rng noise_rng(7);
  std::vector<double> noisy = clean;
  for (double& v : noisy) v += noise_rng.gaussian(0.0, 0.5 * 5.0);
  // Zero-mean noise only inflates variance; any eventual alarm comes long
  // after the ~20-sample latency of a real shift (see DetectsMeanShiftUp).
  const int alarm = det.first_alarm(noisy);
  EXPECT_TRUE(alarm == -1 || alarm > 150) << "alarmed at " << alarm;
}

TEST(Cusum, PaperPremiseFgsmScaleNudgeEvades) {
  // A constant ±ε·std nudge with ε = 0.2 (the paper's strongest FGSM) is an
  // order of magnitude below the mean-shift CUSUM reacts to.
  const auto clean = gaussian_signal(400, 120.0, 5.0, 8);
  CusumDetector det(CusumDetector::calibrate(clean));
  std::vector<double> nudged = clean;
  for (std::size_t i = 0; i < nudged.size(); ++i) {
    nudged[i] += (i % 2 == 0 ? 1.0 : -1.0) * 0.2 * 5.0;
  }
  EXPECT_EQ(det.first_alarm(nudged), -1);
}

TEST(Cusum, StepApiAccumulates) {
  CusumConfig cfg;
  cfg.target_mean = 0.0;
  cfg.slack = 0.5;
  cfg.threshold = 2.0;
  CusumDetector det(cfg);
  EXPECT_FALSE(det.step(1.0));  // s_pos = 0.5
  EXPECT_FALSE(det.step(1.0));  // s_pos = 1.0
  EXPECT_FALSE(det.step(1.0));  // s_pos = 1.5
  EXPECT_FALSE(det.step(1.0));  // s_pos = 2.0 (not > threshold)
  EXPECT_TRUE(det.step(1.0));   // s_pos = 2.5
  det.reset();
  EXPECT_DOUBLE_EQ(det.positive_sum(), 0.0);
  EXPECT_FALSE(det.step(1.0));
}

TEST(Cusum, NegativeSideTracksIndependently) {
  CusumConfig cfg;
  cfg.target_mean = 0.0;
  cfg.slack = 0.0;
  cfg.threshold = 1.5;
  CusumDetector det(cfg);
  EXPECT_FALSE(det.step(-1.0));
  EXPECT_TRUE(det.step(-1.0));
  EXPECT_DOUBLE_EQ(det.positive_sum(), 0.0);
}

TEST(Cusum, CalibrateUsesSignalStatistics) {
  const auto clean = gaussian_signal(2000, 50.0, 2.0, 9);
  const CusumConfig cfg = CusumDetector::calibrate(clean);
  EXPECT_NEAR(cfg.target_mean, 50.0, 0.2);
  EXPECT_NEAR(cfg.slack, 1.0, 0.1);       // σ/2
  EXPECT_NEAR(cfg.threshold, 16.0, 1.6);  // 8σ
}

TEST(Cusum, RejectsBadConfig) {
  CusumConfig cfg;
  cfg.slack = -1.0;
  EXPECT_THROW(CusumDetector{cfg}, cpsguard::ContractViolation);
  cfg.slack = 0.5;
  cfg.threshold = 0.0;
  EXPECT_THROW(CusumDetector{cfg}, cpsguard::ContractViolation);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(CusumDetector::calibrate(one), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::safety

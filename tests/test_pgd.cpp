#include "attack/pgd.h"

#include <gtest/gtest.h>

#include "attack/fgsm.h"
#include "monitor/features.h"
#include "nn/classifier.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::attack {
namespace {

using monitor::Features;

nn::Tensor3 random_windows(int n, int t, util::Rng& rng) {
  nn::Tensor3 x(n, t, Features::kNumFeatures);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

class PgdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(1);
    clf_ = std::make_unique<nn::MlpClassifier>(
        3, Features::kNumFeatures, std::vector<int>{16}, 2, rng);
    util::Rng xr(2);
    x_ = random_windows(30, 3, xr);
    labels_.assign(30, 0);
    for (int i = 15; i < 30; ++i) labels_[static_cast<std::size_t>(i)] = 1;
  }

  double loss_of(const nn::Tensor3& x) {
    const nn::SoftmaxCrossEntropy ce;
    clf_->zero_grad();
    const double l = clf_->accumulate_gradients(x, labels_, {}, ce);
    clf_->zero_grad();
    return l;
  }

  std::unique_ptr<nn::Classifier> clf_;
  nn::Tensor3 x_;
  std::vector<int> labels_;
};

TEST_F(PgdTest, RespectsEpsilonBall) {
  PgdConfig cfg;
  cfg.epsilon = 0.1;
  cfg.step_size = 0.04;
  cfg.iterations = 10;
  const nn::Tensor3 adv = pgd_attack(*clf_, x_, labels_, cfg);
  EXPECT_LE(linf_distance(adv, x_), cfg.epsilon + 1e-6);
}

TEST_F(PgdTest, AtLeastAsStrongAsFgsm) {
  PgdConfig pc;
  pc.epsilon = 0.15;
  pc.step_size = 0.05;
  pc.iterations = 8;
  FgsmConfig fc;
  fc.epsilon = 0.15;
  const double pgd_loss = loss_of(pgd_attack(*clf_, x_, labels_, pc));
  const double fgsm_loss = loss_of(fgsm_attack(*clf_, x_, labels_, fc));
  EXPECT_GE(pgd_loss, fgsm_loss - 1e-3);
  EXPECT_GT(pgd_loss, loss_of(x_));
}

TEST_F(PgdTest, SingleIterationFullStepEqualsFgsm) {
  PgdConfig pc;
  pc.epsilon = 0.1;
  pc.step_size = 0.1;
  pc.iterations = 1;
  FgsmConfig fc;
  fc.epsilon = 0.1;
  EXPECT_TRUE(pgd_attack(*clf_, x_, labels_, pc) ==
              fgsm_attack(*clf_, x_, labels_, fc));
}

TEST_F(PgdTest, MaskRestrictsPerturbation) {
  PgdConfig cfg;
  cfg.epsilon = 0.1;
  cfg.mask = FeatureMask::kSensorsOnly;
  const nn::Tensor3 adv = pgd_attack(*clf_, x_, labels_, cfg);
  for (int b = 0; b < x_.batch(); ++b) {
    for (int t = 0; t < x_.time(); ++t) {
      for (int f = 0; f < x_.features(); ++f) {
        if (Features::is_command_feature(f)) {
          EXPECT_FLOAT_EQ(adv.at(b, t, f), x_.at(b, t, f));
        }
      }
    }
  }
}

TEST_F(PgdTest, RejectsBadConfig) {
  PgdConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW(pgd_attack(*clf_, x_, labels_, cfg), cpsguard::ContractViolation);
  cfg.iterations = 1;
  cfg.step_size = 0.0;
  EXPECT_THROW(pgd_attack(*clf_, x_, labels_, cfg), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::attack

// Streaming detection service suite: warm-up boundary, per-session
// isolation (interleaved sessions reproduce dedicated OnlineMonitors
// bit-for-bit), admission control, deterministic golden replay (serial vs
// pooled flushes byte-identical, pinned against tests/golden/, including a
// mid-stream hot-swap + rollback segment), live model hot-swap (epoch
// boundary latency, no-op self-swap oracle, shadow scoring, rollback,
// registry-driven swap), and concurrent ingest (the TSan CI job runs this
// binary).
//
// Re-bless the replay golden after an intentional model/output change:
//   CPSGUARD_BLESS=1 ./build/tests/test_serve
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "core/experiment.h"
#include "core/online_monitor.h"
#include "obs/sha256.h"
#include "registry/registry.h"
#include "serve/stable_hash.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/thread_pool.h"

#ifndef CPSGUARD_GOLDEN_DIR
#define CPSGUARD_GOLDEN_DIR "tests/golden"
#endif

namespace cpsguard::serve {
namespace {

namespace fs = std::filesystem;

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : exp_(tiny_config()) {}

  monitor::MlMonitor& mon() { return exp_.monitor(mlp_); }
  /// A second, genuinely different model (other architecture, other
  /// scaler-space behaviour is identical since the scaler fits the same
  /// data) for hot-swap tests.
  monitor::MlMonitor& next_mon() { return exp_.monitor(gru_); }
  int window() const { return exp_.config().dataset.window; }

  core::Experiment exp_;
  const core::MonitorVariant mlp_{monitor::Arch::kMlp, false};
  const core::MonitorVariant gru_{monitor::Arch::kGru, false};
};

TEST_F(ServeTest, WarmupBoundary) {
  EngineConfig cfg;
  cfg.window = window();
  Engine engine(mon(), cfg);
  const sim::Trace& trace = exp_.test_traces().front();

  for (int t = 0; t < window() - 1; ++t) {
    engine.submit(9001, trace.steps[static_cast<std::size_t>(t)]);
    EXPECT_TRUE(engine.tick().empty()) << "cycle " << t;
  }
  engine.submit(9001, trace.steps[static_cast<std::size_t>(window() - 1)]);
  const auto events = engine.tick();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].session, 9001u);
  EXPECT_EQ(events[0].cycle, window() - 1);
  EXPECT_GE(events[0].p_unsafe, 0.0);
  EXPECT_LE(events[0].p_unsafe, 1.0);
}

TEST_F(ServeTest, InterleavedSessionsMatchDedicatedMonitors) {
  // Three interleaved sessions, a small micro-batch (so inline batch-full
  // flushes happen) and uneven ticks must reproduce per-trace
  // OnlineMonitors exactly — cross-session batching may not leak state.
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_batch = 4;
  cfg.queue_capacity = 1024;
  Engine engine(mon(), cfg);

  const auto& traces = exp_.test_traces();
  ASSERT_GE(traces.size(), 3u);
  const SessionId ids[3] = {101, 202, 303};
  std::map<SessionId, std::vector<VerdictEvent>> got;
  const int steps = traces[0].length();
  for (int t = 0; t < steps; ++t) {
    for (int s = 0; s < 3; ++s) {
      if (t < traces[static_cast<std::size_t>(s)].length()) {
        engine.submit(ids[s],
                      traces[static_cast<std::size_t>(s)]
                          .steps[static_cast<std::size_t>(t)]);
      }
    }
    if (t % 7 == 0) {
      for (const auto& ev : engine.tick()) got[ev.session].push_back(ev);
    }
  }
  for (const auto& ev : engine.tick()) got[ev.session].push_back(ev);

  for (int s = 0; s < 3; ++s) {
    const sim::Trace& trace = traces[static_cast<std::size_t>(s)];
    core::OnlineMonitor dedicated(mon(), window());
    const auto& events = got[ids[s]];
    std::size_t next = 0;
    for (int t = 0; t < trace.length(); ++t) {
      const auto v = dedicated.step(trace.steps[static_cast<std::size_t>(t)]);
      if (!v.ready) continue;
      ASSERT_LT(next, events.size()) << "session " << s << " cycle " << t;
      const VerdictEvent& ev = events[next++];
      EXPECT_EQ(ev.cycle, t);
      EXPECT_EQ(ev.prediction, v.prediction) << "session " << s << " cycle " << t;
      EXPECT_EQ(ev.p_unsafe, v.p_unsafe) << "session " << s << " cycle " << t;
    }
    EXPECT_EQ(next, events.size()) << "session " << s << " extra verdicts";
  }
}

TEST_F(ServeTest, BackpressureRejectsWithTypedError) {
  const int w = window();
  EngineConfig cfg;
  cfg.window = w;
  cfg.shards = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = 8;
  Engine engine(mon(), cfg);
  const sim::Trace& trace = exp_.test_traces().front();
  const auto& rec = trace.steps[0];

  // One session streaming without any drain: windows complete from cycle
  // w-1 on, the 8th completed window batch-full-flushes into the undrained
  // queue, and the next record must bounce.
  for (int t = 0; t < w + 7; ++t) {
    ASSERT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted) << t;
  }
  EXPECT_EQ(engine.queue_depth(), 8u);
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kRejectedQueueFull);
  EXPECT_THROW(engine.submit(5, rec), QueueFullError);
  // Rejection is not a silent drop: the window did not advance, so after
  // draining, the same record is admitted and produces the next verdict.
  const auto drained = engine.tick();
  EXPECT_EQ(drained.size(), 8u);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted);
  const auto after = engine.tick();
  ASSERT_EQ(after.size(), 1u);
  // Cycles 0..w+6 were accepted; the rejected record left no ghost cycle.
  EXPECT_EQ(after[0].cycle, w + 7);
}

TEST_F(ServeTest, SessionLimitRejectsWithTypedError) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_sessions = 2;
  Engine engine(mon(), cfg);
  const auto& rec = exp_.test_traces().front().steps[0];

  EXPECT_EQ(engine.try_submit(1, rec), SubmitStatus::kAccepted);
  EXPECT_EQ(engine.try_submit(2, rec), SubmitStatus::kAccepted);
  EXPECT_EQ(engine.try_submit(3, rec), SubmitStatus::kRejectedSessionLimit);
  EXPECT_THROW(engine.submit(3, rec), SessionLimitError);
  EXPECT_EQ(engine.sessions_active(), 2u);
  // Closing a session frees its budget slot.
  EXPECT_TRUE(engine.close_session(1));
  EXPECT_FALSE(engine.close_session(1));
  EXPECT_EQ(engine.try_submit(3, rec), SubmitStatus::kAccepted);
}

TEST_F(ServeTest, RejectionLeavesObservableStateUnchangedAndRecovers) {
  // Queue-full path: a rejection must not move queue_depth,
  // sessions_active or the records ledger, and draining must make the
  // very same submit succeed.
  const int w = window();
  EngineConfig cfg;
  cfg.window = w;
  cfg.shards = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = 8;
  Engine engine(mon(), cfg);
  const auto& rec = exp_.test_traces().front().steps[0];
  for (int t = 0; t < w + 7; ++t) {
    ASSERT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted);
  }
  const std::size_t depth_before = engine.queue_depth();
  const std::size_t sessions_before = engine.sessions_active();
  const std::uint64_t records_before = engine.stats().records;
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kRejectedQueueFull);
  EXPECT_EQ(engine.queue_depth(), depth_before);
  EXPECT_EQ(engine.sessions_active(), sessions_before);
  EXPECT_EQ(engine.stats().records, records_before);
  EXPECT_EQ(engine.stats().rejected_queue_full, 1u);
  (void)engine.tick();
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted);

  // Session-limit path: the rejected session must leave no ghost state,
  // and closing an existing session must readmit it.
  EngineConfig limited;
  limited.window = w;
  limited.max_sessions = 1;
  Engine small(mon(), limited);
  ASSERT_EQ(small.try_submit(1, rec), SubmitStatus::kAccepted);
  const std::size_t small_depth = small.queue_depth();
  EXPECT_EQ(small.try_submit(2, rec), SubmitStatus::kRejectedSessionLimit);
  EXPECT_EQ(small.sessions_active(), 1u);
  EXPECT_EQ(small.queue_depth(), small_depth);
  EXPECT_EQ(small.stats().rejected_session_limit, 1u);
  EXPECT_TRUE(small.close_session(1));
  EXPECT_EQ(small.try_submit(2, rec), SubmitStatus::kAccepted);
  EXPECT_EQ(small.sessions_active(), 1u);
}

TEST_F(ServeTest, RejectsBadConfigAndUntrainedMonitor) {
  monitor::MonitorConfig mc;
  monitor::MlMonitor untrained(mc);
  EXPECT_THROW(Engine(untrained, EngineConfig{}), ContractViolation);

  EngineConfig bad;
  bad.queue_capacity = 1;  // cannot hold one full micro-batch
  EXPECT_THROW(Engine(mon(), bad), ContractViolation);
  EngineConfig no_shards;
  no_shards.shards = 0;
  EXPECT_THROW(Engine(mon(), no_shards), ContractViolation);
}

TEST_F(ServeTest, RoutingIsStable) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 8;
  Engine engine(mon(), cfg);
  for (SessionId id : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    const int shard = engine.shard_of(id);
    EXPECT_EQ(shard, engine.shard_of(id));
    EXPECT_EQ(shard, static_cast<int>(stable_hash64(id) % 8));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
  }
}

// ---- deterministic golden replay ------------------------------------------

/// Serialize one VerdictEvent as a replay line. p_unsafe goes out as raw
/// IEEE-754 bits — byte-identity, not just closeness — and model_version
/// pins which model scored the window.
std::string verdict_line(const VerdictEvent& ev) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(ev.p_unsafe));
  std::memcpy(&bits, &ev.p_unsafe, sizeof(bits));
  char line[112];
  std::snprintf(line, sizeof(line), "%llu,%d,%d,%llu,%016llx\n",
                static_cast<unsigned long long>(ev.session), ev.cycle,
                ev.prediction,
                static_cast<unsigned long long>(ev.model_version),
                static_cast<unsigned long long>(bits));
  return line;
}

std::string replay(core::Experiment& exp, monitor::MlMonitor& mon,
                   monitor::MlMonitor& next, bool deterministic) {
  EngineConfig cfg;
  cfg.window = exp.config().dataset.window;
  cfg.shards = 4;
  cfg.max_batch = 16;
  cfg.deterministic = deterministic;
  Engine engine(mon, cfg);

  const auto& traces = exp.test_traces();
  const int kSessions = 8;
  std::string out;
  const sim::Trace& longest = traces.front();
  for (int t = 0; t < longest.length(); ++t) {
    // Churn segment: two sessions close mid-stream and reopen on their
    // next submit (window refills from scratch), so the golden pins the
    // close/reopen path too.
    if (t == longest.length() / 2) {
      engine.close_session(1000);      // reopens next cycle
      engine.close_session(1000 + 21); // s == 3
    }
    // Swap segment: hot-swap to the second model a third of the way in
    // (activates inside that tick, after its flush — so that tick's
    // verdicts still carry v1), then roll back to v1 at two thirds. The
    // golden therefore pins the epoch protocol and the raw-ring rescale.
    if (t == longest.length() / 3) engine.stage_model(next, 2);
    if (t == 2 * longest.length() / 3) engine.rollback();
    for (int s = 0; s < kSessions; ++s) {
      const sim::Trace& trace = traces[static_cast<std::size_t>(s) % traces.size()];
      if (t >= trace.length()) continue;
      engine.submit(1000 + static_cast<SessionId>(s) * 7,
                    trace.steps[static_cast<std::size_t>(t)]);
    }
    for (const auto& ev : engine.tick()) out += verdict_line(ev);
  }
  return out;
}

TEST_F(ServeTest, DeterministicGoldenReplay) {
  // Serial deterministic mode vs pooled flushes: the verdict stream —
  // including the mid-stream hot-swap and rollback — must be
  // byte-identical, and match the checked-in golden.
  util::set_max_parallelism(1);
  const std::string serial =
      replay(exp_, mon(), next_mon(), /*deterministic=*/true);
  util::set_max_parallelism(0);
  const std::string pooled =
      replay(exp_, mon(), next_mon(), /*deterministic=*/false);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial, pooled)
      << "serial and pooled serve runs diverged — a flush reduction or "
      << "delivery order is schedule-dependent";

  const fs::path golden = fs::path(CPSGUARD_GOLDEN_DIR) / "serve_replay.csv";
  if (std::getenv("CPSGUARD_BLESS") != nullptr) {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    out << serial;
    GTEST_SKIP() << "blessed " << golden;
  }
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << golden;
  const std::string expected{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(obs::sha256_hex(serial), obs::sha256_hex(expected))
      << "serve replay drifted from " << golden
      << " (re-bless with CPSGUARD_BLESS=1 if intentional)";
  EXPECT_EQ(serial, expected);
}

// ---- live model hot-swap ---------------------------------------------------

/// Drive `sessions` interleaved sessions through `engine` for the length of
/// the longest trace, calling `at_tick(t)` before each cycle's submits, and
/// return the serialized verdict stream.
template <typename AtTick>
std::string drive(core::Experiment& exp, Engine& engine, int sessions,
                  AtTick at_tick) {
  const auto& traces = exp.test_traces();
  std::string out;
  const int steps = traces.front().length();
  for (int t = 0; t < steps; ++t) {
    at_tick(t);
    for (int s = 0; s < sessions; ++s) {
      const sim::Trace& trace =
          traces[static_cast<std::size_t>(s) % traces.size()];
      if (t >= trace.length()) continue;
      engine.submit(2000 + static_cast<SessionId>(s) * 11,
                    trace.steps[static_cast<std::size_t>(t)]);
    }
    for (const auto& ev : engine.tick()) out += verdict_line(ev);
  }
  return out;
}

TEST_F(ServeTest, SwapActivatesAtEpochBoundaryWithBoundedLatency) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_batch = 16;
  Engine engine(mon(), cfg);
  const sim::Trace& trace = exp_.test_traces().front();

  // Warm up one session so every tick emits a verdict.
  int t = 0;
  for (; t < window(); ++t) {
    engine.submit(7, trace.steps[static_cast<std::size_t>(t)]);
    (void)engine.tick();
  }

  engine.stage_model(next_mon(), 2);
  // Staging is not activation: verdicts keep flowing from v1 until the
  // next epoch boundary.
  EXPECT_EQ(engine.active_version(), 1u);
  EXPECT_EQ(engine.staged_version(), 2u);

  // The activating tick flushes with the old model first, so its verdicts
  // still carry v1 — no micro-batch ever mixes versions.
  engine.submit(7, trace.steps[static_cast<std::size_t>(t++)]);
  const auto boundary = engine.tick();
  ASSERT_EQ(boundary.size(), 1u);
  EXPECT_EQ(boundary[0].model_version, 1u);
  EXPECT_EQ(engine.active_version(), 2u);
  EXPECT_EQ(engine.staged_version(), 0u);

  // From the very next tick on, verdicts carry v2: latency is exactly one
  // flush epoch, never more.
  engine.submit(7, trace.steps[static_cast<std::size_t>(t++)]);
  const auto after = engine.tick();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].model_version, 2u);

  const SwapStats& ss = engine.swap_stats();
  EXPECT_EQ(ss.swaps, 1u);
  EXPECT_EQ(ss.last_activate_tick, ss.last_stage_tick);
  EXPECT_LE(ss.max_latency_ticks, 1);
  EXPECT_EQ(engine.stats().swaps, 2u);  // one activation per shard
}

TEST_F(ServeTest, NoOpSelfSwapLeavesStreamByteIdentical) {
  // Swapping in a clone of the active model at the active version must be
  // invisible: the raw-ring rescale reproduces every in-flight window bit
  // for bit, so the full verdict stream (version column included) matches
  // a swap-free run exactly. This is the standing no-op oracle the loadgen
  // soak leans on.
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 4;
  cfg.max_batch = 8;
  Engine plain(mon(), cfg);
  const std::string baseline = drive(exp_, plain, 6, [](int) {});

  Engine swapping(mon(), cfg);
  const std::string swapped =
      drive(exp_, swapping, 6, [&](int t) {
        if (t > 0 && t % 5 == 0) {
          swapping.stage_model(mon(), swapping.active_version());
        }
      });
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(swapped, baseline)
      << "self-swap perturbed the verdict stream — the raw-ring rescale is "
         "not bit-identical to fresh ingest";
  EXPECT_GT(swapping.swap_stats().swaps, 0u);
  EXPECT_LE(swapping.swap_stats().max_latency_ticks, 1);
}

TEST_F(ServeTest, ShadowModeDualScoresWithoutChangingVerdicts) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_batch = 8;
  Engine plain(mon(), cfg);
  const std::string baseline = drive(exp_, plain, 4, [](int) {});

  // Shadow-stage the candidate a third of the way in: verdicts must stay
  // byte-identical to the baseline (the shadow model observes, never
  // scores), while the shadow counters prove it actually ran.
  Engine shadowed(mon(), cfg);
  const int stage_at = exp_.test_traces().front().length() / 3;
  const std::string stream =
      drive(exp_, shadowed, 4, [&](int t) {
        if (t == stage_at) {
          shadowed.stage_model(next_mon(), 2, SwapMode::kShadow);
        }
      });
  EXPECT_EQ(stream, baseline);
  EXPECT_EQ(shadowed.active_version(), 1u);
  EXPECT_EQ(shadowed.shadow_version(), 2u);
  EXPECT_GT(shadowed.stats().shadow_windows, 0u);
  EXPECT_LE(shadowed.stats().shadow_disagree, shadowed.stats().shadow_windows);

  // Promotion turns the shadow into a staged epoch swap; the next tick
  // activates it.
  EXPECT_TRUE(shadowed.promote_shadow());
  EXPECT_EQ(shadowed.staged_version(), 2u);
  EXPECT_EQ(shadowed.shadow_version(), 0u);
  (void)shadowed.tick();
  EXPECT_EQ(shadowed.active_version(), 2u);
  EXPECT_FALSE(shadowed.promote_shadow());  // nothing left to promote
}

TEST_F(ServeTest, RollbackRestoresThePreviousModelStream) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_batch = 8;
  Engine plain(mon(), cfg);
  const std::string baseline = drive(exp_, plain, 4, [](int) {});

  // Swap to v2 a third of the way in, roll back at two thirds. After the
  // rollback activates, the stream must rejoin the never-swapped baseline
  // exactly — same predictions, same bits, same version column — because
  // the raw rings rebuild v1's scaled windows bit for bit.
  const int steps = exp_.test_traces().front().length();
  Engine engine(mon(), cfg);
  bool rolled = false;
  const std::string stream = drive(exp_, engine, 4, [&](int t) {
    if (t == steps / 3) engine.stage_model(next_mon(), 2);
    if (t == 2 * steps / 3) rolled = engine.rollback();
  });
  EXPECT_TRUE(rolled);
  EXPECT_EQ(engine.active_version(), 1u);
  EXPECT_EQ(engine.swap_stats().swaps, 2u);  // swap + rollback activation

  // Compare the post-rollback suffix line by line against the baseline.
  // The rollback staged at tick 2*steps/3 activates inside that tick, so
  // every verdict from cycle 2*steps/3 + 1 on must match.
  std::map<std::string, std::string> base_lines;  // "session,cycle" -> line
  auto index = [](const std::string& s,
                  std::map<std::string, std::string>& into) {
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t eol = s.find('\n', pos);
      const std::string line = s.substr(pos, eol - pos);
      const std::size_t second_comma = line.find(',', line.find(',') + 1);
      into[line.substr(0, second_comma)] = line;
      pos = eol + 1;
    }
  };
  std::map<std::string, std::string> got_lines;
  index(baseline, base_lines);
  index(stream, got_lines);
  int compared = 0;
  for (const auto& [key, line] : got_lines) {
    const int cycle = std::stoi(key.substr(key.find(',') + 1));
    if (cycle <= 2 * steps / 3) continue;
    ASSERT_TRUE(base_lines.count(key)) << key;
    EXPECT_EQ(line, base_lines[key]) << "post-rollback divergence at " << key;
    ++compared;
  }
  EXPECT_GT(compared, 0);

  // Rollback with nothing to roll back is a clean no-op.
  Engine idle(mon(), cfg);
  EXPECT_FALSE(idle.rollback());
  // Rollback before activation just drops the staged model.
  idle.stage_model(next_mon(), 2);
  EXPECT_FALSE(idle.rollback());
  EXPECT_EQ(idle.staged_version(), 0u);
  (void)idle.tick();
  EXPECT_EQ(idle.active_version(), 1u);
}

TEST_F(ServeTest, SwapModelFromRegistryMatchesFromScratchEngine) {
  const fs::path dir =
      fs::temp_directory_path() / "cpsguard_serve_registry_swap";
  fs::remove_all(dir);
  registry::ModelRegistry reg(dir.string());
  (void)exp_.publish_monitor(mlp_, reg);  // v1
  (void)exp_.publish_monitor(gru_, reg);  // v2

  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_batch = 8;

  // Reference: the candidate model serving from the very first cycle.
  Engine reference(next_mon(), cfg);
  const std::string ref_stream = drive(exp_, reference, 4, [](int) {});

  // Swap the registry's v2 in mid-stream. The mmap'd artifact dies inside
  // swap_model (shards clone), so GC'ing v1 afterwards is safe.
  const int steps = exp_.test_traces().front().length();
  Engine engine(mon(), cfg);
  const std::string stream = drive(exp_, engine, 4, [&](int t) {
    if (t == steps / 2) {
      engine.swap_model(reg, 2);
      EXPECT_EQ(reg.gc(1), (std::vector<std::uint64_t>{1}));
    }
  });
  EXPECT_EQ(engine.active_version(), 2u);
  EXPECT_LE(engine.swap_stats().max_latency_ticks, 1);

  // After activation the swapped engine must agree with the from-scratch
  // reference bit for bit (modulo the version column: the reference's v1
  // label vs the swapped engine's v2): the raw rings rebuild the
  // candidate's scaled windows exactly as fresh ingest would.
  auto tail = [&](const std::string& s) {
    std::map<std::string, std::pair<int, std::string>> out;
    std::size_t pos = 0;
    while (pos < s.size()) {
      const std::size_t eol = s.find('\n', pos);
      const std::string line = s.substr(pos, eol - pos);
      const std::size_t c1 = line.find(',');
      const std::size_t c2 = line.find(',', c1 + 1);
      const std::size_t c3 = line.find(',', c2 + 1);
      const int cycle = std::stoi(line.substr(c1 + 1, c2 - c1 - 1));
      // prediction + p_unsafe bits, version column dropped.
      out[line.substr(0, c2)] = {cycle, line.substr(c2 + 1, c3 - c2 - 1) +
                                            line.substr(line.rfind(','))};
      pos = eol + 1;
    }
    return out;
  };
  const auto ref_lines = tail(ref_stream);
  const auto got_lines = tail(stream);
  int compared = 0;
  for (const auto& [key, val] : got_lines) {
    if (val.first <= steps / 2) continue;
    const auto it = ref_lines.find(key);
    ASSERT_NE(it, ref_lines.end()) << key;
    EXPECT_EQ(val.second, it->second.second)
        << "post-swap divergence from from-scratch candidate at " << key;
    ++compared;
  }
  EXPECT_GT(compared, 0);

  // Asking for a version the registry no longer holds is a typed error.
  EXPECT_THROW(engine.swap_model(reg, 1), CpsError);
  fs::remove_all(dir);
}

// ---- concurrent ingest -----------------------------------------------------

TEST_F(ServeTest, ConcurrentIngestIsRaceFreeAndLossless) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 4;
  cfg.max_batch = 16;
  cfg.queue_capacity = 4096;
  Engine engine(mon(), cfg);

  const auto& traces = exp_.test_traces();
  const int kThreads = 4;
  const int kSessionsPerThread = 8;
  const int kRecords = 40;

  std::vector<VerdictEvent> ticker_events;
  std::atomic<bool> done{false};
  std::thread ticker([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto evs = engine.tick();
      ticker_events.insert(ticker_events.end(), evs.begin(), evs.end());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  std::atomic<int> rejected{0};
  for (int th = 0; th < kThreads; ++th) {
    producers.emplace_back([&, th] {
      for (int t = 0; t < kRecords; ++t) {
        for (int s = 0; s < kSessionsPerThread; ++s) {
          const auto id = static_cast<SessionId>(th * 1000 + s);
          const sim::Trace& trace =
              traces[static_cast<std::size_t>(th + s) % traces.size()];
          const auto& rec =
              trace.steps[static_cast<std::size_t>(t) %
                          trace.steps.size()];
          if (engine.try_submit(id, rec) != SubmitStatus::kAccepted) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_relaxed);
  ticker.join();

  const auto final_events = engine.tick();
  EXPECT_EQ(rejected.load(), 0);
  const std::size_t expected_windows =
      static_cast<std::size_t>(kThreads) * kSessionsPerThread *
      static_cast<std::size_t>(kRecords - window() + 1);
  EXPECT_EQ(ticker_events.size() + final_events.size(), expected_windows);
  EXPECT_EQ(engine.sessions_active(),
            static_cast<std::size_t>(kThreads) * kSessionsPerThread);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

}  // namespace
}  // namespace cpsguard::serve

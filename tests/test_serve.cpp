// Streaming detection service suite: warm-up boundary, per-session
// isolation (interleaved sessions reproduce dedicated OnlineMonitors
// bit-for-bit), admission control, deterministic golden replay (serial vs
// pooled flushes byte-identical, pinned against tests/golden/), and
// concurrent ingest (the TSan CI job runs this binary).
//
// Re-bless the replay golden after an intentional model/output change:
//   CPSGUARD_BLESS=1 ./build/tests/test_serve
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "core/experiment.h"
#include "core/online_monitor.h"
#include "obs/sha256.h"
#include "serve/stable_hash.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

#ifndef CPSGUARD_GOLDEN_DIR
#define CPSGUARD_GOLDEN_DIR "tests/golden"
#endif

namespace cpsguard::serve {
namespace {

namespace fs = std::filesystem;

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : exp_(tiny_config()) {}

  monitor::MlMonitor& mon() { return exp_.monitor(mlp_); }
  int window() const { return exp_.config().dataset.window; }

  core::Experiment exp_;
  const core::MonitorVariant mlp_{monitor::Arch::kMlp, false};
};

TEST_F(ServeTest, WarmupBoundary) {
  EngineConfig cfg;
  cfg.window = window();
  Engine engine(mon(), cfg);
  const sim::Trace& trace = exp_.test_traces().front();

  for (int t = 0; t < window() - 1; ++t) {
    engine.submit(9001, trace.steps[static_cast<std::size_t>(t)]);
    EXPECT_TRUE(engine.tick().empty()) << "cycle " << t;
  }
  engine.submit(9001, trace.steps[static_cast<std::size_t>(window() - 1)]);
  const auto events = engine.tick();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].session, 9001u);
  EXPECT_EQ(events[0].cycle, window() - 1);
  EXPECT_GE(events[0].p_unsafe, 0.0);
  EXPECT_LE(events[0].p_unsafe, 1.0);
}

TEST_F(ServeTest, InterleavedSessionsMatchDedicatedMonitors) {
  // Three interleaved sessions, a small micro-batch (so inline batch-full
  // flushes happen) and uneven ticks must reproduce per-trace
  // OnlineMonitors exactly — cross-session batching may not leak state.
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_batch = 4;
  cfg.queue_capacity = 1024;
  Engine engine(mon(), cfg);

  const auto& traces = exp_.test_traces();
  ASSERT_GE(traces.size(), 3u);
  const SessionId ids[3] = {101, 202, 303};
  std::map<SessionId, std::vector<VerdictEvent>> got;
  const int steps = traces[0].length();
  for (int t = 0; t < steps; ++t) {
    for (int s = 0; s < 3; ++s) {
      if (t < traces[static_cast<std::size_t>(s)].length()) {
        engine.submit(ids[s],
                      traces[static_cast<std::size_t>(s)]
                          .steps[static_cast<std::size_t>(t)]);
      }
    }
    if (t % 7 == 0) {
      for (const auto& ev : engine.tick()) got[ev.session].push_back(ev);
    }
  }
  for (const auto& ev : engine.tick()) got[ev.session].push_back(ev);

  for (int s = 0; s < 3; ++s) {
    const sim::Trace& trace = traces[static_cast<std::size_t>(s)];
    core::OnlineMonitor dedicated(mon(), window());
    const auto& events = got[ids[s]];
    std::size_t next = 0;
    for (int t = 0; t < trace.length(); ++t) {
      const auto v = dedicated.step(trace.steps[static_cast<std::size_t>(t)]);
      if (!v.ready) continue;
      ASSERT_LT(next, events.size()) << "session " << s << " cycle " << t;
      const VerdictEvent& ev = events[next++];
      EXPECT_EQ(ev.cycle, t);
      EXPECT_EQ(ev.prediction, v.prediction) << "session " << s << " cycle " << t;
      EXPECT_EQ(ev.p_unsafe, v.p_unsafe) << "session " << s << " cycle " << t;
    }
    EXPECT_EQ(next, events.size()) << "session " << s << " extra verdicts";
  }
}

TEST_F(ServeTest, BackpressureRejectsWithTypedError) {
  const int w = window();
  EngineConfig cfg;
  cfg.window = w;
  cfg.shards = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = 8;
  Engine engine(mon(), cfg);
  const sim::Trace& trace = exp_.test_traces().front();
  const auto& rec = trace.steps[0];

  // One session streaming without any drain: windows complete from cycle
  // w-1 on, the 8th completed window batch-full-flushes into the undrained
  // queue, and the next record must bounce.
  for (int t = 0; t < w + 7; ++t) {
    ASSERT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted) << t;
  }
  EXPECT_EQ(engine.queue_depth(), 8u);
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kRejectedQueueFull);
  EXPECT_THROW(engine.submit(5, rec), QueueFullError);
  // Rejection is not a silent drop: the window did not advance, so after
  // draining, the same record is admitted and produces the next verdict.
  const auto drained = engine.tick();
  EXPECT_EQ(drained.size(), 8u);
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted);
  const auto after = engine.tick();
  ASSERT_EQ(after.size(), 1u);
  // Cycles 0..w+6 were accepted; the rejected record left no ghost cycle.
  EXPECT_EQ(after[0].cycle, w + 7);
}

TEST_F(ServeTest, SessionLimitRejectsWithTypedError) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 2;
  cfg.max_sessions = 2;
  Engine engine(mon(), cfg);
  const auto& rec = exp_.test_traces().front().steps[0];

  EXPECT_EQ(engine.try_submit(1, rec), SubmitStatus::kAccepted);
  EXPECT_EQ(engine.try_submit(2, rec), SubmitStatus::kAccepted);
  EXPECT_EQ(engine.try_submit(3, rec), SubmitStatus::kRejectedSessionLimit);
  EXPECT_THROW(engine.submit(3, rec), SessionLimitError);
  EXPECT_EQ(engine.sessions_active(), 2u);
  // Closing a session frees its budget slot.
  EXPECT_TRUE(engine.close_session(1));
  EXPECT_FALSE(engine.close_session(1));
  EXPECT_EQ(engine.try_submit(3, rec), SubmitStatus::kAccepted);
}

TEST_F(ServeTest, RejectionLeavesObservableStateUnchangedAndRecovers) {
  // Queue-full path: a rejection must not move queue_depth,
  // sessions_active or the records ledger, and draining must make the
  // very same submit succeed.
  const int w = window();
  EngineConfig cfg;
  cfg.window = w;
  cfg.shards = 1;
  cfg.max_batch = 8;
  cfg.queue_capacity = 8;
  Engine engine(mon(), cfg);
  const auto& rec = exp_.test_traces().front().steps[0];
  for (int t = 0; t < w + 7; ++t) {
    ASSERT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted);
  }
  const std::size_t depth_before = engine.queue_depth();
  const std::size_t sessions_before = engine.sessions_active();
  const std::uint64_t records_before = engine.stats().records;
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kRejectedQueueFull);
  EXPECT_EQ(engine.queue_depth(), depth_before);
  EXPECT_EQ(engine.sessions_active(), sessions_before);
  EXPECT_EQ(engine.stats().records, records_before);
  EXPECT_EQ(engine.stats().rejected_queue_full, 1u);
  (void)engine.tick();
  EXPECT_EQ(engine.try_submit(5, rec), SubmitStatus::kAccepted);

  // Session-limit path: the rejected session must leave no ghost state,
  // and closing an existing session must readmit it.
  EngineConfig limited;
  limited.window = w;
  limited.max_sessions = 1;
  Engine small(mon(), limited);
  ASSERT_EQ(small.try_submit(1, rec), SubmitStatus::kAccepted);
  const std::size_t small_depth = small.queue_depth();
  EXPECT_EQ(small.try_submit(2, rec), SubmitStatus::kRejectedSessionLimit);
  EXPECT_EQ(small.sessions_active(), 1u);
  EXPECT_EQ(small.queue_depth(), small_depth);
  EXPECT_EQ(small.stats().rejected_session_limit, 1u);
  EXPECT_TRUE(small.close_session(1));
  EXPECT_EQ(small.try_submit(2, rec), SubmitStatus::kAccepted);
  EXPECT_EQ(small.sessions_active(), 1u);
}

TEST_F(ServeTest, RejectsBadConfigAndUntrainedMonitor) {
  monitor::MonitorConfig mc;
  monitor::MlMonitor untrained(mc);
  EXPECT_THROW(Engine(untrained, EngineConfig{}), ContractViolation);

  EngineConfig bad;
  bad.queue_capacity = 1;  // cannot hold one full micro-batch
  EXPECT_THROW(Engine(mon(), bad), ContractViolation);
  EngineConfig no_shards;
  no_shards.shards = 0;
  EXPECT_THROW(Engine(mon(), no_shards), ContractViolation);
}

TEST_F(ServeTest, RoutingIsStable) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 8;
  Engine engine(mon(), cfg);
  for (SessionId id : {0ULL, 1ULL, 42ULL, 0xdeadbeefULL}) {
    const int shard = engine.shard_of(id);
    EXPECT_EQ(shard, engine.shard_of(id));
    EXPECT_EQ(shard, static_cast<int>(stable_hash64(id) % 8));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
  }
}

// ---- deterministic golden replay ------------------------------------------

std::string replay(core::Experiment& exp, monitor::MlMonitor& mon,
                   bool deterministic) {
  EngineConfig cfg;
  cfg.window = exp.config().dataset.window;
  cfg.shards = 4;
  cfg.max_batch = 16;
  cfg.deterministic = deterministic;
  Engine engine(mon, cfg);

  const auto& traces = exp.test_traces();
  const int kSessions = 8;
  std::string out;
  char line[96];
  const sim::Trace& longest = traces.front();
  for (int t = 0; t < longest.length(); ++t) {
    // Churn segment: two sessions close mid-stream and reopen on their
    // next submit (window refills from scratch), so the golden pins the
    // close/reopen path too.
    if (t == longest.length() / 2) {
      engine.close_session(1000);      // reopens next cycle
      engine.close_session(1000 + 21); // s == 3
    }
    for (int s = 0; s < kSessions; ++s) {
      const sim::Trace& trace = traces[static_cast<std::size_t>(s) % traces.size()];
      if (t >= trace.length()) continue;
      engine.submit(1000 + static_cast<SessionId>(s) * 7,
                    trace.steps[static_cast<std::size_t>(t)]);
    }
    for (const auto& ev : engine.tick()) {
      // p_unsafe serialized as raw bits: byte-identity, not just closeness.
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(ev.p_unsafe));
      std::memcpy(&bits, &ev.p_unsafe, sizeof(bits));
      std::snprintf(line, sizeof(line), "%llu,%d,%d,%016llx\n",
                    static_cast<unsigned long long>(ev.session), ev.cycle,
                    ev.prediction, static_cast<unsigned long long>(bits));
      out += line;
    }
  }
  return out;
}

TEST_F(ServeTest, DeterministicGoldenReplay) {
  // Serial deterministic mode vs pooled flushes: the verdict stream must
  // be byte-identical, and match the checked-in golden.
  util::set_max_parallelism(1);
  const std::string serial = replay(exp_, mon(), /*deterministic=*/true);
  util::set_max_parallelism(0);
  const std::string pooled = replay(exp_, mon(), /*deterministic=*/false);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial, pooled)
      << "serial and pooled serve runs diverged — a flush reduction or "
      << "delivery order is schedule-dependent";

  const fs::path golden = fs::path(CPSGUARD_GOLDEN_DIR) / "serve_replay.csv";
  if (std::getenv("CPSGUARD_BLESS") != nullptr) {
    fs::create_directories(golden.parent_path());
    std::ofstream out(golden, std::ios::binary);
    out << serial;
    GTEST_SKIP() << "blessed " << golden;
  }
  std::ifstream in(golden, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << golden;
  const std::string expected{std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()};
  EXPECT_EQ(obs::sha256_hex(serial), obs::sha256_hex(expected))
      << "serve replay drifted from " << golden
      << " (re-bless with CPSGUARD_BLESS=1 if intentional)";
  EXPECT_EQ(serial, expected);
}

// ---- concurrent ingest -----------------------------------------------------

TEST_F(ServeTest, ConcurrentIngestIsRaceFreeAndLossless) {
  EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 4;
  cfg.max_batch = 16;
  cfg.queue_capacity = 4096;
  Engine engine(mon(), cfg);

  const auto& traces = exp_.test_traces();
  const int kThreads = 4;
  const int kSessionsPerThread = 8;
  const int kRecords = 40;

  std::vector<VerdictEvent> ticker_events;
  std::atomic<bool> done{false};
  std::thread ticker([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto evs = engine.tick();
      ticker_events.insert(ticker_events.end(), evs.begin(), evs.end());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  std::atomic<int> rejected{0};
  for (int th = 0; th < kThreads; ++th) {
    producers.emplace_back([&, th] {
      for (int t = 0; t < kRecords; ++t) {
        for (int s = 0; s < kSessionsPerThread; ++s) {
          const auto id = static_cast<SessionId>(th * 1000 + s);
          const sim::Trace& trace =
              traces[static_cast<std::size_t>(th + s) % traces.size()];
          const auto& rec =
              trace.steps[static_cast<std::size_t>(t) %
                          trace.steps.size()];
          if (engine.try_submit(id, rec) != SubmitStatus::kAccepted) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  done.store(true, std::memory_order_relaxed);
  ticker.join();

  const auto final_events = engine.tick();
  EXPECT_EQ(rejected.load(), 0);
  const std::size_t expected_windows =
      static_cast<std::size_t>(kThreads) * kSessionsPerThread *
      static_cast<std::size_t>(kRecords - window() + 1);
  EXPECT_EQ(ticker_events.size() + final_events.size(), expected_windows);
  EXPECT_EQ(engine.sessions_active(),
            static_cast<std::size_t>(kThreads) * kSessionsPerThread);
  EXPECT_EQ(engine.queue_depth(), 0u);
}

}  // namespace
}  // namespace cpsguard::serve

// Attack-model properties: Gaussian noise hits only sensor features with the
// configured magnitude; FGSM respects its L∞ budget exactly and increases
// the loss; the black-box substitute clones the target and transfers.
#include <gtest/gtest.h>

#include "attack/blackbox.h"
#include "attack/fgsm.h"
#include "attack/gaussian.h"
#include "monitor/features.h"
#include "nn/classifier.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cpsguard::attack {
namespace {

using monitor::Features;

nn::Tensor3 random_windows(int n, int t, util::Rng& rng) {
  nn::Tensor3 x(n, t, Features::kNumFeatures);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return x;
}

monitor::StandardScaler unit_scaler(int t) {
  // Fit on data with per-feature std ≈ feature index + 1 for testability.
  util::Rng rng(123);
  nn::Tensor3 x(500, t, Features::kNumFeatures);
  for (int b = 0; b < 500; ++b) {
    for (int tt = 0; tt < t; ++tt) {
      for (int f = 0; f < Features::kNumFeatures; ++f) {
        x.at(b, tt, f) = static_cast<float>(rng.gaussian(0.0, f + 1.0));
      }
    }
  }
  monitor::StandardScaler s;
  s.fit(x);
  return s;
}

TEST(FeatureMask, SensorAndCommandPartition) {
  EXPECT_TRUE(feature_in_mask(Features::kBg, FeatureMask::kSensorsOnly));
  EXPECT_TRUE(feature_in_mask(Features::kDiob, FeatureMask::kSensorsOnly));
  EXPECT_FALSE(feature_in_mask(Features::kRate, FeatureMask::kSensorsOnly));
  EXPECT_TRUE(feature_in_mask(Features::kRate, FeatureMask::kCommandsOnly));
  EXPECT_TRUE(feature_in_mask(Features::kActionBase, FeatureMask::kCommandsOnly));
  EXPECT_FALSE(feature_in_mask(Features::kBg, FeatureMask::kCommandsOnly));
  for (int f = 0; f < Features::kNumFeatures; ++f) {
    EXPECT_TRUE(feature_in_mask(f, FeatureMask::kAll));
  }
}

TEST(FeatureMask, ApplyZerosMaskedCoordinates) {
  util::Rng rng(1);
  nn::Tensor3 p = random_windows(3, 2, rng);
  apply_feature_mask(p, FeatureMask::kSensorsOnly);
  for (int b = 0; b < 3; ++b) {
    for (int t = 0; t < 2; ++t) {
      EXPECT_FLOAT_EQ(p.at(b, t, Features::kRate), 0.0f);
      EXPECT_FLOAT_EQ(p.at(b, t, Features::kActionBase + 1), 0.0f);
    }
  }
}

TEST(LinfDistance, MeasuresLargestChange) {
  nn::Tensor3 a(1, 1, 9), b(1, 1, 9);
  b.at(0, 0, 3) = 0.5f;
  b.at(0, 0, 7) = -0.2f;
  EXPECT_NEAR(linf_distance(a, b), 0.5, 1e-7);
}

TEST(GaussianNoise, PerturbsOnlySensorFeatures) {
  util::Rng data_rng(2);
  const nn::Tensor3 x = random_windows(50, 6, data_rng);
  const auto scaler = unit_scaler(6);
  GaussianNoiseConfig cfg;
  cfg.sigma_factor = 0.5;
  util::Rng rng(3);
  const nn::Tensor3 noisy = add_gaussian_noise(x, scaler, cfg, rng);
  for (int b = 0; b < x.batch(); ++b) {
    for (int t = 0; t < x.time(); ++t) {
      for (int f = 0; f < x.features(); ++f) {
        if (Features::is_command_feature(f)) {
          EXPECT_FLOAT_EQ(noisy.at(b, t, f), x.at(b, t, f));
        }
      }
    }
  }
  EXPECT_GT(linf_distance(noisy, x), 0.0);
}

TEST(GaussianNoise, MagnitudeScalesWithFeatureStd) {
  util::Rng data_rng(4);
  const nn::Tensor3 x = random_windows(800, 2, data_rng);
  const auto scaler = unit_scaler(2);
  GaussianNoiseConfig cfg;
  cfg.sigma_factor = 0.5;
  util::Rng rng(5);
  const nn::Tensor3 noisy = add_gaussian_noise(x, scaler, cfg, rng);
  // Empirical std of the added noise per feature ≈ 0.5 * std_of(f).
  for (const int f : {Features::kBg, Features::kDiob}) {
    util::RunningStats s;
    for (int b = 0; b < x.batch(); ++b) {
      for (int t = 0; t < x.time(); ++t) {
        s.add(noisy.at(b, t, f) - x.at(b, t, f));
      }
    }
    EXPECT_NEAR(s.stddev(), 0.5 * scaler.std_of(f), 0.06 * scaler.std_of(f));
    EXPECT_NEAR(s.mean(), 0.0, 0.05 * scaler.std_of(f));
  }
}

TEST(GaussianNoise, ZeroSigmaIsIdentity) {
  util::Rng data_rng(6);
  const nn::Tensor3 x = random_windows(10, 2, data_rng);
  const auto scaler = unit_scaler(2);
  GaussianNoiseConfig cfg;
  cfg.sigma_factor = 0.0;
  util::Rng rng(7);
  EXPECT_TRUE(add_gaussian_noise(x, scaler, cfg, rng) == x);
}

TEST(GaussianNoise, DeterministicInRng) {
  util::Rng data_rng(8);
  const nn::Tensor3 x = random_windows(10, 2, data_rng);
  const auto scaler = unit_scaler(2);
  GaussianNoiseConfig cfg;
  util::Rng r1(9), r2(9);
  EXPECT_TRUE(add_gaussian_noise(x, scaler, cfg, r1) ==
              add_gaussian_noise(x, scaler, cfg, r2));
}

class FgsmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(10);
    clf_ = std::make_unique<nn::MlpClassifier>(
        3, Features::kNumFeatures, std::vector<int>{16}, 2, rng);
    util::Rng xr(11);
    x_ = random_windows(20, 3, xr);
    labels_.assign(20, 0);
    for (int i = 10; i < 20; ++i) labels_[static_cast<std::size_t>(i)] = 1;
  }

  std::unique_ptr<nn::Classifier> clf_;
  nn::Tensor3 x_;
  std::vector<int> labels_;
};

TEST_F(FgsmTest, RespectsLinfBudgetExactly) {
  FgsmConfig cfg;
  cfg.epsilon = 0.07;
  const nn::Tensor3 adv = fgsm_attack(*clf_, x_, labels_, cfg);
  EXPECT_LE(linf_distance(adv, x_), cfg.epsilon + 1e-6);
  // And the budget should be met (sign() is ±ε almost everywhere).
  EXPECT_NEAR(linf_distance(adv, x_), cfg.epsilon, 1e-4);
}

TEST_F(FgsmTest, IncreasesCrossEntropyLoss) {
  FgsmConfig cfg;
  cfg.epsilon = 0.2;
  const nn::Tensor3 adv = fgsm_attack(*clf_, x_, labels_, cfg);
  const nn::SoftmaxCrossEntropy ce;
  clf_->zero_grad();
  const double clean = clf_->accumulate_gradients(x_, labels_, {}, ce);
  clf_->zero_grad();
  const double attacked = clf_->accumulate_gradients(adv, labels_, {}, ce);
  clf_->zero_grad();
  EXPECT_GT(attacked, clean);
}

TEST_F(FgsmTest, ZeroEpsilonIsIdentity) {
  FgsmConfig cfg;
  cfg.epsilon = 0.0;
  EXPECT_TRUE(fgsm_attack(*clf_, x_, labels_, cfg) == x_);
}

TEST_F(FgsmTest, MaskLimitsPerturbedFeatures) {
  FgsmConfig cfg;
  cfg.epsilon = 0.1;
  cfg.mask = FeatureMask::kSensorsOnly;
  const nn::Tensor3 adv = fgsm_attack(*clf_, x_, labels_, cfg);
  for (int b = 0; b < x_.batch(); ++b) {
    for (int t = 0; t < x_.time(); ++t) {
      for (int f = 0; f < x_.features(); ++f) {
        if (Features::is_command_feature(f)) {
          EXPECT_FLOAT_EQ(adv.at(b, t, f), x_.at(b, t, f));
        }
      }
    }
  }
}

TEST_F(FgsmTest, WorksAgainstLstm) {
  util::Rng rng(12);
  nn::LstmClassifier lstm(3, Features::kNumFeatures, {8}, 2, rng);
  FgsmConfig cfg;
  cfg.epsilon = 0.15;
  const nn::Tensor3 adv = fgsm_attack(lstm, x_, labels_, cfg);
  EXPECT_LE(linf_distance(adv, x_), cfg.epsilon + 1e-6);
  EXPECT_GT(linf_distance(adv, x_), 0.0);
}

TEST_F(FgsmTest, RejectsLabelMismatch) {
  FgsmConfig cfg;
  const std::vector<int> too_few = {0, 1};
  EXPECT_THROW(fgsm_attack(*clf_, x_, too_few, cfg), cpsguard::ContractViolation);
}

TEST(SubstituteAttack, ClonesSimpleTargetDecision) {
  // Target: an MLP trained to threshold on BG-feature mean. The substitute
  // must reach high agreement from query access alone.
  util::Rng rng(13);
  nn::MlpClassifier target(2, Features::kNumFeatures, {16}, 2, rng);
  util::Rng data_rng(14);
  nn::Tensor3 x = random_windows(400, 2, data_rng);
  std::vector<int> y(400);
  for (int i = 0; i < 400; ++i) {
    y[static_cast<std::size_t>(i)] =
        x.at(i, 0, Features::kBg) + x.at(i, 1, Features::kBg) > 0 ? 1 : 0;
  }
  nn::Adam adam(0.01);
  const nn::SoftmaxCrossEntropy ce;
  for (int e = 0; e < 30; ++e) target.train_batch(x, y, {}, ce, adam);

  SubstituteConfig sc;
  sc.hidden = {32};
  sc.epochs = 20;
  SubstituteAttack sub(sc);
  EXPECT_FALSE(sub.fitted());
  sub.fit(target, x);
  EXPECT_TRUE(sub.fitted());
  EXPECT_GT(sub.agreement(target, x), 0.8);
}

TEST(SubstituteAttack, CraftRespectsBudgetAndUsesSubstitute) {
  util::Rng rng(15);
  nn::MlpClassifier target(2, Features::kNumFeatures, {8}, 2, rng);
  util::Rng data_rng(16);
  const nn::Tensor3 x = random_windows(100, 2, data_rng);

  SubstituteAttack sub(SubstituteConfig{});
  sub.fit(target, x);
  const std::vector<int> oracle = nn::predict_classes(target, x);
  FgsmConfig cfg;
  cfg.epsilon = 0.1;
  const nn::Tensor3 adv = sub.craft(x, oracle, cfg);
  EXPECT_LE(linf_distance(adv, x), cfg.epsilon + 1e-6);
}

TEST(SubstituteAttack, UnfittedOperationsThrow) {
  SubstituteAttack sub(SubstituteConfig{});
  util::Rng rng(17);
  const nn::Tensor3 x = random_windows(2, 2, rng);
  const std::vector<int> labels = {0, 1};
  EXPECT_THROW(sub.craft(x, labels, FgsmConfig{}), cpsguard::ContractViolation);
  EXPECT_THROW(sub.substitute(), cpsguard::ContractViolation);
}

TEST(ToString, MaskNames) {
  EXPECT_EQ(to_string(FeatureMask::kSensorsOnly), "sensors");
  EXPECT_EQ(to_string(FeatureMask::kCommandsOnly), "commands");
  EXPECT_EQ(to_string(FeatureMask::kAll), "sensors+commands");
}

}  // namespace
}  // namespace cpsguard::attack

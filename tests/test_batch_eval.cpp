// Batched-inference contract suite: the argmax tie-break/NaN policy and
// the "deciding not to parallelize must not instantiate the pool" fix.
//
// The fixture builds its tiny monitor directly from closed-loop traces
// (no Experiment) so nothing here fans out on the shared pool — which is
// exactly what SerialConfigurationDoesNotInstantiatePool asserts.
#include "eval/batch_eval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "monitor/dataset.h"
#include "sim/closed_loop.h"
#include "util/contracts.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpsguard::eval {
namespace {

const monitor::Dataset& tiny_dataset() {
  static const monitor::Dataset ds = [] {
    std::vector<sim::Trace> traces;
    auto patient = sim::make_patient(sim::Testbed::kGlucosymOpenAps);
    auto controller = sim::make_controller(sim::Testbed::kGlucosymOpenAps);
    const auto profiles =
        sim::testbed_profiles(sim::Testbed::kGlucosymOpenAps, 2, 5);
    util::Rng rng(23);
    for (int i = 0; i < 4; ++i) {
      sim::SimConfig cfg;
      cfg.steps = 50;
      cfg.inject_fault = (i % 2 == 0);
      traces.push_back(run_closed_loop(
          *patient, *controller, profiles[static_cast<std::size_t>(i % 2)],
          cfg, rng));
    }
    return monitor::build_dataset(traces, monitor::DatasetConfig{});
  }();
  return ds;
}

monitor::MlMonitor& tiny_monitor() {
  static monitor::MlMonitor mon = [] {
    monitor::MonitorConfig cfg;
    cfg.arch = monitor::Arch::kMlp;
    cfg.hidden = {16, 8};
    cfg.epochs = 2;
    cfg.seed = 23;
    monitor::MlMonitor m(cfg);
    m.train(tiny_dataset());
    return m;
  }();
  return mon;
}

// NaN end-to-end requires the LSTM: the MLP's ReLU (`v > 0 ? v : 0`)
// silently launders a NaN pre-activation into 0, while tanh/sigmoid
// propagate it to the softmax.
monitor::MlMonitor& tiny_lstm_monitor() {
  static monitor::MlMonitor mon = [] {
    monitor::MonitorConfig cfg;
    cfg.arch = monitor::Arch::kLstm;
    cfg.hidden = {8, 8};
    cfg.epochs = 1;
    cfg.seed = 23;
    monitor::MlMonitor m(cfg);
    m.train(tiny_dataset());
    return m;
  }();
  return mon;
}

constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

TEST(ArgmaxRow, TiesBreakToSmallestClassIndex) {
  // Documented contract: strict `>` scan, so the first of the maxima wins
  // — an exactly-tied binary row classifies as the safe class 0, the same
  // rule as nn::predict_classes / MlMonitor::predict.
  EXPECT_EQ(argmax_row(std::vector<float>{0.5f, 0.5f}), 0);
  EXPECT_EQ(argmax_row(std::vector<float>{0.2f, 0.4f, 0.4f}), 1);
  EXPECT_EQ(argmax_row(std::vector<float>{0.4f, 0.2f, 0.4f}), 0);
  EXPECT_EQ(argmax_row(std::vector<float>{0.1f, 0.9f}), 1);
}

TEST(ArgmaxRow, NanThrowsTypedErrorInAnyPosition) {
  // Pre-fix behaviour: NaN lost every `>` comparison, so a NaN row
  // silently classified as class 0 — an accept-then-corrupt violation of
  // the PR 5 NaN policy.
  EXPECT_THROW(argmax_row(std::vector<float>{kNan, 0.5f}), CpsError);
  EXPECT_THROW(argmax_row(std::vector<float>{0.5f, kNan}), CpsError);
  EXPECT_THROW(argmax_row(std::vector<float>{kNan, kNan}), CpsError);
  EXPECT_THROW(argmax_row(std::vector<float>{}), ContractViolation);
}

TEST(BatchedPredict, NanWindowRejectedByContract) {
  monitor::MlMonitor& mon = tiny_lstm_monitor();
  const monitor::Dataset& ds = tiny_dataset();
  const std::vector<int> idx = {0, 1, 2};
  nn::Tensor3 windows = ds.x.gather(idx);
  windows.at(1, 0, 0) = kNan;  // propagates through scaler + tanh/sigmoid
  // The probability surface itself may carry NaN (predict_proba is the
  // attack/diagnostic surface) ...
  const nn::Matrix probs = eval::batched_predict_proba(mon, windows, 512);
  EXPECT_TRUE(std::isnan(probs.at(1, 0)) || std::isnan(probs.at(1, 1)));
  // ... but classification must refuse it, not silently emit class 0.
  EXPECT_THROW(eval::batched_predict(mon, windows, 512), CpsError);
}

TEST(BatchedPredict, MatchesMonitorPredictPath) {
  monitor::MlMonitor& mon = tiny_monitor();
  const monitor::Dataset& ds = tiny_dataset();
  // Same tie-break rule end to end: chunked argmax == MlMonitor::predict.
  EXPECT_EQ(eval::batched_predict(mon, ds.x, 8), mon.predict(ds.x));
  EXPECT_EQ(eval::batched_predict(mon, ds.x, 512), mon.predict(ds.x));
}

TEST(BatchedPredict, SerialConfigurationDoesNotInstantiatePool) {
  monitor::MlMonitor& mon = tiny_monitor();
  const monitor::Dataset& ds = tiny_dataset();
  ASSERT_FALSE(util::shared_pool_initialized())
      << "test setup unexpectedly touched the shared pool";

  // Single-window predictions: chunking can never win, pool stays down.
  const std::vector<int> one = {0};
  const nn::Tensor3 single = ds.x.gather(one);
  for (int i = 0; i < 3; ++i) {
    eval::batched_predict_proba(mon, single, 512);
  }
  EXPECT_FALSE(util::shared_pool_initialized());

  // Pre-fix: with parallelism capped to 1 (a serial --threads 1 run) a
  // large batch still force-started the process-wide pool just to decide
  // not to use it. worth_chunking must consult the configured cap only.
  util::set_max_parallelism(1);
  ASSERT_GT(ds.x.batch(), 2 * 4);
  eval::batched_predict_proba(mon, ds.x, 4);
  EXPECT_FALSE(util::shared_pool_initialized())
      << "deciding not to chunk instantiated the shared pool";
  util::set_max_parallelism(0);
}

}  // namespace
}  // namespace cpsguard::eval

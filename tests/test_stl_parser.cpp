#include "safety/stl_parser.h"

#include <gtest/gtest.h>

#include <string>

namespace cpsguard::safety {
namespace {

SignalTrace make_trace() {
  SignalTrace st;
  st.add_signal("BG", {100, 130, 170, 190, 210});
  st.add_signal("dBG", {0.0, 0.5, 0.8, 0.6, 0.4});
  st.add_signal("u3", {0, 0, 0, 1, 1});
  return st;
}

TEST(StlParser, SimpleAtom) {
  const auto f = parse_stl("BG > 180");
  const SignalTrace st = make_trace();
  EXPECT_FALSE(f->eval(st, 2));
  EXPECT_TRUE(f->eval(st, 3));
}

TEST(StlParser, AllComparisonOperators) {
  const SignalTrace st = make_trace();
  EXPECT_TRUE(parse_stl("BG >= 100")->eval(st, 0));
  EXPECT_TRUE(parse_stl("BG <= 100")->eval(st, 0));
  EXPECT_FALSE(parse_stl("BG < 100")->eval(st, 0));
  EXPECT_FALSE(parse_stl("BG > 100")->eval(st, 0));
  EXPECT_TRUE(parse_stl("BG == 100")->eval(st, 0));
  EXPECT_TRUE(parse_stl("BG == 100.5 ~ 1.0")->eval(st, 0));
  EXPECT_FALSE(parse_stl("BG == 102 ~ 1.0")->eval(st, 0));
}

TEST(StlParser, NegativeThreshold) {
  SignalTrace st;
  st.add_signal("dIOB", {-0.5});
  EXPECT_TRUE(parse_stl("dIOB < -0.1")->eval(st, 0));
  EXPECT_FALSE(parse_stl("dIOB > -0.6 && dIOB > 0")->eval(st, 0));
}

TEST(StlParser, BooleanConnectivesAndPrecedence) {
  const SignalTrace st = make_trace();
  // && binds tighter than ||: false && false || true == true.
  const auto f = parse_stl("BG > 500 && dBG > 0 || u3 > 0.5");
  EXPECT_TRUE(f->eval(st, 3));
  EXPECT_FALSE(f->eval(st, 0));
}

TEST(StlParser, Negation) {
  const SignalTrace st = make_trace();
  EXPECT_TRUE(parse_stl("!(BG > 180)")->eval(st, 0));
  EXPECT_FALSE(parse_stl("!!(BG > 500)")->eval(st, 0));
}

TEST(StlParser, TemporalOperators) {
  const SignalTrace st = make_trace();
  EXPECT_TRUE(parse_stl("F[0,4](BG > 200)")->eval(st, 0));
  EXPECT_FALSE(parse_stl("F[0,2](BG > 200)")->eval(st, 0));
  EXPECT_TRUE(parse_stl("G[0,4](BG >= 100)")->eval(st, 0));
  EXPECT_FALSE(parse_stl("G[1,3](BG > 150)")->eval(st, 0));
}

TEST(StlParser, UntilOperator) {
  const SignalTrace st = make_trace();
  // BG stays below 200 until u3 fires within [0,4].
  const auto f = parse_stl("BG < 200 U[0,4] u3 > 0.5");
  EXPECT_TRUE(f->eval(st, 0));
  // Impossible right-hand side.
  EXPECT_FALSE(parse_stl("BG < 200 U[0,4] BG > 500")->eval(st, 0));
}

TEST(StlParser, UntilSemanticLhsMustHold) {
  SignalTrace st;
  st.add_signal("a", {1, 0, 1});
  st.add_signal("b", {0, 0, 1});
  // a fails at index 1, before b holds at 2.
  EXPECT_FALSE(parse_stl("a > 0.5 U[0,2] b > 0.5")->eval(st, 0));
  // With the window starting where b already holds it still fails because
  // a must hold on [t, u) and a(1)=0 with u=2... but u can also be 0/1? b=0 there.
  st = SignalTrace();
  st.add_signal("a", {1, 1, 1});
  st.add_signal("b", {0, 0, 1});
  EXPECT_TRUE(parse_stl("a > 0.5 U[0,2] b > 0.5")->eval(st, 0));
}

TEST(StlParser, KeywordsAndRoundtrip) {
  const SignalTrace st = make_trace();
  EXPECT_TRUE(parse_stl("true")->eval(st, 0));
  EXPECT_FALSE(parse_stl("false")->eval(st, 0));
  // Round-trip: parse → print → parse yields the same evaluations.
  const auto f = parse_stl("(BG > 120 && dBG > 0.1) || F[0,3](u3 > 0.5)");
  const auto g = parse_stl(f->to_string());
  for (int t = 0; t < st.length(); ++t) {
    EXPECT_EQ(f->eval(st, t), g->eval(st, t)) << "t=" << t;
  }
}

TEST(StlParser, SignalNamesWithUnderscoresAndDigits) {
  SignalTrace st;
  st.add_signal("u1_decrease", {1});
  EXPECT_TRUE(parse_stl("u1_decrease > 0.5")->eval(st, 0));
}

TEST(StlParser, TableIRulesParseFromText) {
  // Rule 9 and rule 10 of Table I, as a safety engineer would author them.
  const auto rule9 = parse_stl("BG > 120 && u3 > 0.5");
  const auto rule10 = parse_stl("BG < 70 && !(u3 > 0.5)");
  SignalTrace st;
  st.add_signal("BG", {190, 60});
  st.add_signal("u3", {1, 0});
  EXPECT_TRUE(rule9->eval(st, 0));
  EXPECT_FALSE(rule9->eval(st, 1));
  EXPECT_TRUE(rule10->eval(st, 1));
  EXPECT_FALSE(rule10->eval(st, 0));
}

TEST(StlParser, ErrorsCarryPosition) {
  try {
    parse_stl("BG >");
    FAIL() << "expected parse error";
  } catch (const StlParseError& e) {
    EXPECT_GE(e.position(), 4u);
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(StlParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_stl(""), StlParseError);
  EXPECT_THROW(parse_stl("BG"), StlParseError);
  EXPECT_THROW(parse_stl("BG > abc"), StlParseError);
  EXPECT_THROW(parse_stl("(BG > 1"), StlParseError);
  EXPECT_THROW(parse_stl("BG > 1 extra"), StlParseError);
  EXPECT_THROW(parse_stl("G[3,1](BG > 1)"), StlParseError);
  EXPECT_THROW(parse_stl("F[0,2] BG > 1"), StlParseError);
  EXPECT_THROW(parse_stl("&& BG > 1"), StlParseError);
}

TEST(StlParser, WhitespaceInsensitive) {
  const SignalTrace st = make_trace();
  const auto f = parse_stl("  BG>180&&dBG  >0.1  ");
  EXPECT_TRUE(f->eval(st, 3));
}

// Regressions from fuzz target "stl": these inputs used to escape as
// untyped std::invalid_argument / std::out_of_range, silently truncate, or
// (the nesting case) overflow the stack.
TEST(StlParser, NumericEdgeCasesAreTypedRejects) {
  EXPECT_THROW(parse_stl("F[0,99999999999999999999](BG < 70)"), StlParseError);
  EXPECT_THROW(parse_stl("BG > ."), StlParseError);
  EXPECT_THROW(parse_stl("BG > 1.2.3"), StlParseError);  // stod took "1.2"
  EXPECT_THROW(parse_stl("BG > 1e999"), StlParseError);
}

TEST(StlParser, DeepNestingHitsDepthCapNotStack) {
  const std::string deep = std::string(200, '(') + "BG > 1" + std::string(200, ')');
  EXPECT_THROW(parse_stl(deep), StlParseError);
  // At or under the cap, nesting is fine.
  const std::string ok = std::string(32, '(') + "BG > 1" + std::string(32, ')');
  EXPECT_NO_THROW(parse_stl(ok));
}

TEST(StlParser, ParseErrorIsTypedCpsError) {
  // StlParseError now derives from CpsError, the repo-wide bad-input type.
  EXPECT_THROW(parse_stl("("), CpsError);
}

}  // namespace
}  // namespace cpsguard::safety

// End-to-end harness tests at miniature scale: campaign generation,
// splitting, monitor training/caching, and all three perturbation
// evaluations produce sane results.
#include "core/experiment.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "util/contracts.h"

namespace cpsguard::core {
namespace {

ExperimentConfig tiny_config(sim::Testbed tb = sim::Testbed::kGlucosymOpenAps) {
  ExperimentConfig cfg;
  cfg.campaign.testbed = tb;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 7;
  cfg.epochs = 2;
  cfg.cache_dir = "";  // no caching unless a test opts in
  return cfg;
}

TEST(Campaign, GeneratesRequestedTraceCount) {
  const auto traces = generate_campaign(tiny_config().campaign);
  EXPECT_EQ(traces.size(), 9u);
  for (const auto& t : traces) EXPECT_EQ(t.length(), 60);
}

TEST(Campaign, DeterministicAcrossRuns) {
  const auto a = generate_campaign(tiny_config().campaign);
  const auto b = generate_campaign(tiny_config().campaign);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].length(), b[i].length());
    for (int s = 0; s < a[i].length(); ++s) {
      EXPECT_DOUBLE_EQ(a[i].steps[static_cast<std::size_t>(s)].true_bg,
                       b[i].steps[static_cast<std::size_t>(s)].true_bg);
    }
  }
}

TEST(Campaign, FaultFractionRoughlyRespected) {
  CampaignConfig cfg = tiny_config().campaign;
  cfg.patients = 5;
  cfg.sims_per_patient = 20;
  cfg.fault_fraction = 0.5;
  const auto traces = generate_campaign(cfg);
  int faulty = 0;
  for (const auto& t : traces) faulty += t.fault_injected ? 1 : 0;
  EXPECT_GT(faulty, 30);
  EXPECT_LT(faulty, 70);
}

TEST(Split, ByTraceNoLeakage) {
  const auto traces = generate_campaign(tiny_config().campaign);
  const auto split = build_datasets(traces, monitor::DatasetConfig{}, 0.7, 3);
  EXPECT_EQ(split.train_traces.size() + split.test_traces.size(), traces.size());
  EXPECT_FALSE(split.train_traces.empty());
  EXPECT_FALSE(split.test_traces.empty());
  EXPECT_EQ(split.train.num_traces(),
            static_cast<int>(split.train_traces.size()));
  EXPECT_EQ(split.test.num_traces(), static_cast<int>(split.test_traces.size()));
}

TEST(Split, RejectsBadFraction) {
  const auto traces = generate_campaign(tiny_config().campaign);
  EXPECT_THROW(build_datasets(traces, monitor::DatasetConfig{}, 0.0, 3),
               ContractViolation);
  EXPECT_THROW(build_datasets(traces, monitor::DatasetConfig{}, 1.0, 3),
               ContractViolation);
}

TEST(Variants, FourInPaperOrder) {
  const auto vs = all_variants();
  ASSERT_EQ(vs.size(), 4u);
  EXPECT_EQ(vs[0].name(), "MLP");
  EXPECT_EQ(vs[1].name(), "LSTM");
  EXPECT_EQ(vs[2].name(), "MLP-Custom");
  EXPECT_EQ(vs[3].name(), "LSTM-Custom");
}

class ExperimentTest : public ::testing::Test {
 protected:
  ExperimentTest() : exp_(tiny_config()) {}
  Experiment exp_;
  const MonitorVariant mlp_{monitor::Arch::kMlp, false};
};

TEST_F(ExperimentTest, PrepareBuildsDatasets) {
  exp_.prepare();
  EXPECT_GT(exp_.train_data().size(), 0);
  EXPECT_GT(exp_.test_data().size(), 0);
  const double pos = exp_.train_data().positive_fraction();
  EXPECT_GT(pos, 0.02);
  EXPECT_LT(pos, 0.9);
}

TEST_F(ExperimentTest, CleanEvaluationIsSane) {
  const auto r = exp_.evaluate_clean(mlp_);
  EXPECT_GE(r.f1(), 0.0);
  EXPECT_LE(r.f1(), 1.0);
  EXPECT_GT(r.accuracy(), 0.4);  // should beat coin flip even when tiny
  EXPECT_DOUBLE_EQ(r.robustness_err, 0.0);
}

TEST_F(ExperimentTest, RuleMonitorEvaluates) {
  const auto r = exp_.evaluate_rule_monitor();
  EXPECT_GT(r.confusion.total(), 0);
  EXPECT_GE(r.f1(), 0.0);
}

TEST_F(ExperimentTest, GaussianEvaluationPerturbsPredictions) {
  const auto r = exp_.evaluate_under_gaussian(mlp_, 1.0);
  EXPECT_GE(r.robustness_err, 0.0);
  EXPECT_LE(r.robustness_err, 1.0);
}

TEST_F(ExperimentTest, FgsmDegradesOrMatchesCleanF1) {
  const auto clean = exp_.evaluate_clean(mlp_);
  // At this miniature scale the monitor can be flat enough that moderate
  // budgets flip nothing; a large budget must move *something*.
  const auto attacked = exp_.evaluate_under_fgsm(mlp_, 0.2);
  EXPECT_LE(attacked.f1(), clean.f1() + 0.1);
  const auto heavy = exp_.evaluate_under_fgsm(mlp_, 1.0);
  EXPECT_GT(heavy.robustness_err, 0.0)
      << "a 1.0 FGSM attack should flip at least one prediction";
}

TEST_F(ExperimentTest, BlackboxRunsAndIsWeakerOrEqualToWhitebox) {
  const auto white = exp_.evaluate_under_fgsm(mlp_, 0.1);
  const auto black = exp_.evaluate_under_blackbox(mlp_, 0.1);
  EXPECT_GE(black.robustness_err, 0.0);
  // Transfer attacks are at most about as strong as white-box on average;
  // allow slack at tiny scale.
  EXPECT_LE(black.robustness_err, white.robustness_err + 0.25);
}

TEST_F(ExperimentTest, CleanPredictionsAreMemoized) {
  const auto& a = exp_.clean_predictions(mlp_);
  const auto& b = exp_.clean_predictions(mlp_);
  EXPECT_EQ(&a, &b);
}

TEST(ExperimentCache, SaveAndReloadProducesSamePredictions) {
  const std::string cache =
      (std::filesystem::temp_directory_path() / "cpsguard_test_cache").string();
  std::filesystem::remove_all(cache);

  ExperimentConfig cfg = tiny_config();
  cfg.cache_dir = cache;
  const MonitorVariant v{monitor::Arch::kMlp, false};

  std::vector<int> first;
  {
    Experiment e1(cfg);
    first = e1.monitor(v).predict(e1.test_data().x);
  }
  {
    Experiment e2(cfg);  // must hit the cache
    const auto second = e2.monitor(v).predict(e2.test_data().x);
    EXPECT_EQ(first, second);
  }
  EXPECT_FALSE(std::filesystem::is_empty(cache));
  std::filesystem::remove_all(cache);
}

TEST(ExperimentT1d, SecondTestbedWorksEndToEnd) {
  Experiment exp(tiny_config(sim::Testbed::kT1dBasalBolus));
  const MonitorVariant lstm{monitor::Arch::kLstm, true};
  const auto clean = exp.evaluate_clean(lstm);
  EXPECT_GT(clean.confusion.total(), 0);
  const auto noisy = exp.evaluate_under_gaussian(lstm, 0.5);
  EXPECT_GE(noisy.robustness_err, 0.0);
}

// Regression: only kLstm used to carry an arch seed tag, so MLP and GRU
// variants derived bit-identical training seeds. Every architecture must
// now map to a distinct seed while MLP/LSTM keep their historical values
// (so cached monitors and committed figure CSVs stay valid).
TEST(MonitorConfigSeeds, DistinctPerArchAndHistoricallyStable) {
  const ExperimentConfig cfg = tiny_config();
  const Experiment exp(cfg);
  const std::uint64_t base = cfg.campaign.seed;

  // Historical derivations, frozen.
  EXPECT_EQ(exp.monitor_config({monitor::Arch::kMlp, false}).seed,
            base ^ 0x1234ULL);
  EXPECT_EQ(exp.monitor_config({monitor::Arch::kMlp, true}).seed,
            base ^ 0xABCDULL);
  EXPECT_EQ(exp.monitor_config({monitor::Arch::kLstm, false}).seed,
            base ^ 0x1234ULL ^ 0xBEEF0000ULL);
  EXPECT_EQ(exp.monitor_config({monitor::Arch::kLstm, true}).seed,
            base ^ 0xABCDULL ^ 0xBEEF0000ULL);

  // All (arch, semantic) combinations must yield pairwise-distinct seeds —
  // the GRU/MLP collision was the bug.
  std::vector<std::uint64_t> seeds;
  for (const auto arch :
       {monitor::Arch::kMlp, monitor::Arch::kLstm, monitor::Arch::kGru}) {
    for (const bool semantic : {false, true}) {
      seeds.push_back(exp.monitor_config({arch, semantic}).seed);
    }
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << "variants " << i << " and " << j;
    }
  }
}

// The parallel sweep APIs must reproduce the pointwise evaluations exactly
// (identical confusion counts and robustness errors, point by point).
TEST_F(ExperimentTest, GaussianSweepMatchesPointwise) {
  const std::vector<double> sigmas = {0.25, 1.0};
  const auto sweep = exp_.evaluate_under_gaussian_sweep(mlp_, sigmas);
  ASSERT_EQ(sweep.size(), sigmas.size());
  for (std::size_t i = 0; i < sigmas.size(); ++i) {
    const auto point = exp_.evaluate_under_gaussian(mlp_, sigmas[i]);
    EXPECT_EQ(sweep[i].confusion.tp, point.confusion.tp) << "sigma " << sigmas[i];
    EXPECT_EQ(sweep[i].confusion.fp, point.confusion.fp) << "sigma " << sigmas[i];
    EXPECT_EQ(sweep[i].confusion.fn, point.confusion.fn) << "sigma " << sigmas[i];
    EXPECT_EQ(sweep[i].confusion.tn, point.confusion.tn) << "sigma " << sigmas[i];
    EXPECT_DOUBLE_EQ(sweep[i].robustness_err, point.robustness_err);
  }
}

TEST_F(ExperimentTest, FgsmSweepMatchesPointwise) {
  const std::vector<double> epsilons = {0.05, 0.2};
  const auto sweep = exp_.evaluate_under_fgsm_sweep(mlp_, epsilons);
  ASSERT_EQ(sweep.size(), epsilons.size());
  for (std::size_t i = 0; i < epsilons.size(); ++i) {
    const auto point = exp_.evaluate_under_fgsm(mlp_, epsilons[i]);
    EXPECT_EQ(sweep[i].confusion.tp, point.confusion.tp) << "eps " << epsilons[i];
    EXPECT_EQ(sweep[i].confusion.fp, point.confusion.fp) << "eps " << epsilons[i];
    EXPECT_EQ(sweep[i].confusion.fn, point.confusion.fn) << "eps " << epsilons[i];
    EXPECT_EQ(sweep[i].confusion.tn, point.confusion.tn) << "eps " << epsilons[i];
    EXPECT_DOUBLE_EQ(sweep[i].robustness_err, point.robustness_err);
  }
}

TEST_F(ExperimentTest, BlackboxSweepMatchesPointwise) {
  const std::vector<double> epsilons = {0.1};
  const auto sweep = exp_.evaluate_under_blackbox_sweep(mlp_, epsilons);
  ASSERT_EQ(sweep.size(), epsilons.size());
  const auto point = exp_.evaluate_under_blackbox(mlp_, epsilons[0]);
  EXPECT_EQ(sweep[0].confusion.tp, point.confusion.tp);
  EXPECT_EQ(sweep[0].confusion.fp, point.confusion.fp);
  EXPECT_EQ(sweep[0].confusion.fn, point.confusion.fn);
  EXPECT_EQ(sweep[0].confusion.tn, point.confusion.tn);
  EXPECT_DOUBLE_EQ(sweep[0].robustness_err, point.robustness_err);
}

TEST(ExperimentTrainAll, HydratesAllVariants) {
  ExperimentConfig cfg = tiny_config();
  cfg.epochs = 1;
  Experiment exp(cfg);
  exp.train_all();
  for (const auto& v : all_variants()) {
    EXPECT_TRUE(exp.monitor(v).trained());
  }
}

}  // namespace
}  // namespace cpsguard::core

#include "monitor/scaler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "util/contracts.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cpsguard::monitor {
namespace {

nn::Tensor3 random_data(int b, int t, int f, util::Rng& rng) {
  nn::Tensor3 x(b, t, f);
  for (int bi = 0; bi < b; ++bi) {
    for (int ti = 0; ti < t; ++ti) {
      for (int fi = 0; fi < f; ++fi) {
        // Each feature has its own scale/offset.
        x.at(bi, ti, fi) =
            static_cast<float>(rng.gaussian(10.0 * fi, 1.0 + fi));
      }
    }
  }
  return x;
}

TEST(Scaler, TransformStandardizesEachFeature) {
  util::Rng rng(1);
  const nn::Tensor3 x = random_data(200, 3, 4, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 z = scaler.transform(x);
  for (int f = 0; f < 4; ++f) {
    util::RunningStats s;
    for (int b = 0; b < z.batch(); ++b) {
      for (int t = 0; t < z.time(); ++t) s.add(z.at(b, t, f));
    }
    EXPECT_NEAR(s.mean(), 0.0, 1e-3) << "feature " << f;
    EXPECT_NEAR(s.stddev(), 1.0, 1e-2) << "feature " << f;
  }
}

TEST(Scaler, InverseTransformRoundtrips) {
  util::Rng rng(2);
  const nn::Tensor3 x = random_data(50, 2, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 back = scaler.inverse_transform(scaler.transform(x));
  for (int b = 0; b < x.batch(); ++b) {
    for (int t = 0; t < x.time(); ++t) {
      for (int f = 0; f < x.features(); ++f) {
        EXPECT_NEAR(back.at(b, t, f), x.at(b, t, f), 1e-2);
      }
    }
  }
}

TEST(Scaler, StdOfReportsRawUnits) {
  util::Rng rng(3);
  const nn::Tensor3 x = random_data(400, 2, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  // Feature 2 was generated with std 3.
  EXPECT_NEAR(scaler.std_of(2), 3.0, 0.15);
  EXPECT_NEAR(scaler.mean_of(2), 20.0, 0.3);
}

TEST(Scaler, ConstantFeaturePassesThroughCentered) {
  nn::Tensor3 x(10, 1, 2);
  for (int b = 0; b < 10; ++b) {
    x.at(b, 0, 0) = 7.0f;                        // constant
    x.at(b, 0, 1) = static_cast<float>(b);       // varying
  }
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 z = scaler.transform(x);
  for (int b = 0; b < 10; ++b) {
    EXPECT_FLOAT_EQ(z.at(b, 0, 0), 0.0f);  // centered, unit divisor
  }
  EXPECT_DOUBLE_EQ(scaler.std_of(0), 1.0);
}

TEST(Scaler, TransformRowBitIdenticalToBatchOnPathologicalFloats) {
  // The serve engine prescales each record once via transform_row; its
  // byte-identity contract vs offline evaluation rests on transform_row
  // producing the same bits as transform() — including on NaN, +/-inf and
  // denormal inputs a hostile or buggy sensor stream could feed it.
  util::Rng rng(8);
  const int features = 5;
  const nn::Tensor3 train = random_data(100, 2, features, rng);
  StandardScaler scaler;
  scaler.fit(train);

  const float kNan = std::numeric_limits<float>::quiet_NaN();
  const float kInf = std::numeric_limits<float>::infinity();
  const float kDenorm = std::numeric_limits<float>::denorm_min();
  const float kTiny = std::numeric_limits<float>::min() / 4.0f;  // subnormal
  const std::vector<std::vector<float>> rows = {
      {kNan, kInf, -kInf, kDenorm, kTiny},
      {-kDenorm, kNan, 0.0f, -0.0f, kInf},
      {std::numeric_limits<float>::max(), std::numeric_limits<float>::lowest(),
       kDenorm, -kTiny, kNan},
      {1.0f, -2.5f, kInf, kDenorm, 42.0f},  // mixed normal/pathological
  };

  nn::Tensor3 batch(static_cast<int>(rows.size()), 1, features);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (int f = 0; f < features; ++f) {
      batch.at(static_cast<int>(r), 0, f) = rows[r][static_cast<std::size_t>(f)];
    }
  }
  const nn::Tensor3 z = scaler.transform(batch);

  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<float> row = rows[r];
    scaler.transform_row(row);
    for (int f = 0; f < features; ++f) {
      std::uint32_t row_bits = 0, batch_bits = 0;
      static_assert(sizeof(row_bits) == sizeof(float));
      std::memcpy(&row_bits, &row[static_cast<std::size_t>(f)],
                  sizeof(row_bits));
      const float zb = z.at(static_cast<int>(r), 0, f);
      std::memcpy(&batch_bits, &zb, sizeof(batch_bits));
      EXPECT_EQ(row_bits, batch_bits)
          << "row " << r << " feature " << f << ": transform_row "
          << row[static_cast<std::size_t>(f)] << " vs transform " << zb;
    }
  }
}

TEST(Scaler, SaveLoadRoundtrip) {
  util::Rng rng(4);
  const nn::Tensor3 x = random_data(30, 2, 5, rng);
  StandardScaler a;
  a.fit(x);
  std::stringstream ss;
  a.save(ss);
  StandardScaler b;
  b.load(ss);
  ASSERT_EQ(b.features(), 5);
  for (int f = 0; f < 5; ++f) {
    EXPECT_DOUBLE_EQ(b.mean_of(f), a.mean_of(f));
    EXPECT_DOUBLE_EQ(b.std_of(f), a.std_of(f));
  }
}

TEST(Scaler, UnfittedOperationsThrow) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  nn::Tensor3 x(1, 1, 1);
  EXPECT_THROW(scaler.transform(x), cpsguard::ContractViolation);
  EXPECT_THROW(scaler.std_of(0), cpsguard::ContractViolation);
  std::stringstream ss;
  EXPECT_THROW(scaler.save(ss), cpsguard::ContractViolation);
}

TEST(Scaler, FeatureWidthMismatchThrows) {
  util::Rng rng(5);
  const nn::Tensor3 x = random_data(10, 1, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 wrong = random_data(10, 1, 4, rng);
  EXPECT_THROW(scaler.transform(wrong), cpsguard::ContractViolation);
}

TEST(Scaler, LoadTruncatedStreamThrows) {
  StandardScaler scaler;
  std::stringstream ss("abc");
  EXPECT_THROW(scaler.load(ss), cpsguard::ContractViolation);
}

// Corrupt-cache hardening: load() must reject streams whose header or
// payload is implausible instead of trusting them, and a failed load must
// leave the scaler unfitted so the caller falls back to retraining.

namespace {

// Serialize a scaler image with the given header and payload vectors.
std::stringstream corrupt_stream(std::uint32_t n, const std::vector<double>& mean,
                                 const std::vector<double>& stdev) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  ss.write(reinterpret_cast<const char*>(&n), sizeof(n));
  ss.write(reinterpret_cast<const char*>(mean.data()),
           static_cast<std::streamsize>(mean.size() * sizeof(double)));
  ss.write(reinterpret_cast<const char*>(stdev.data()),
           static_cast<std::streamsize>(stdev.size() * sizeof(double)));
  return ss;
}

}  // namespace

TEST(Scaler, LoadRejectsZeroFeatureCount) {
  StandardScaler scaler;
  auto ss = corrupt_stream(0, {}, {});
  EXPECT_THROW(scaler.load(ss), cpsguard::ContractViolation);
  EXPECT_FALSE(scaler.fitted());
}

TEST(Scaler, LoadRejectsImplausibleFeatureCount) {
  StandardScaler scaler;
  // A giant header must fail the bound check, not attempt the allocation.
  auto ss = corrupt_stream(0xFFFFFFFFu, {}, {});
  EXPECT_THROW(scaler.load(ss), cpsguard::ContractViolation);
  EXPECT_FALSE(scaler.fitted());
}

TEST(Scaler, LoadRejectsNonFiniteMean) {
  StandardScaler scaler;
  auto ss = corrupt_stream(
      2, {1.0, std::numeric_limits<double>::quiet_NaN()}, {1.0, 1.0});
  EXPECT_THROW(scaler.load(ss), cpsguard::ContractViolation);
  EXPECT_FALSE(scaler.fitted());
}

TEST(Scaler, LoadRejectsNonPositiveOrNonFiniteStd) {
  for (const double bad : {0.0, -1.0, std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()}) {
    StandardScaler scaler;
    auto ss = corrupt_stream(2, {1.0, 2.0}, {1.0, bad});
    EXPECT_THROW(scaler.load(ss), cpsguard::ContractViolation) << "std " << bad;
    EXPECT_FALSE(scaler.fitted());
  }
}

TEST(Scaler, FailedLoadPreservesPreviousState) {
  util::Rng rng(6);
  const nn::Tensor3 x = random_data(20, 1, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const double mean0 = scaler.mean_of(0);
  auto ss = corrupt_stream(1, {std::numeric_limits<double>::quiet_NaN()}, {1.0});
  EXPECT_THROW(scaler.load(ss), cpsguard::ContractViolation);
  ASSERT_TRUE(scaler.fitted());
  EXPECT_DOUBLE_EQ(scaler.mean_of(0), mean0);  // untouched by the bad load
}

}  // namespace
}  // namespace cpsguard::monitor

#include "monitor/scaler.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/contracts.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cpsguard::monitor {
namespace {

nn::Tensor3 random_data(int b, int t, int f, util::Rng& rng) {
  nn::Tensor3 x(b, t, f);
  for (int bi = 0; bi < b; ++bi) {
    for (int ti = 0; ti < t; ++ti) {
      for (int fi = 0; fi < f; ++fi) {
        // Each feature has its own scale/offset.
        x.at(bi, ti, fi) =
            static_cast<float>(rng.gaussian(10.0 * fi, 1.0 + fi));
      }
    }
  }
  return x;
}

TEST(Scaler, TransformStandardizesEachFeature) {
  util::Rng rng(1);
  const nn::Tensor3 x = random_data(200, 3, 4, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 z = scaler.transform(x);
  for (int f = 0; f < 4; ++f) {
    util::RunningStats s;
    for (int b = 0; b < z.batch(); ++b) {
      for (int t = 0; t < z.time(); ++t) s.add(z.at(b, t, f));
    }
    EXPECT_NEAR(s.mean(), 0.0, 1e-3) << "feature " << f;
    EXPECT_NEAR(s.stddev(), 1.0, 1e-2) << "feature " << f;
  }
}

TEST(Scaler, InverseTransformRoundtrips) {
  util::Rng rng(2);
  const nn::Tensor3 x = random_data(50, 2, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 back = scaler.inverse_transform(scaler.transform(x));
  for (int b = 0; b < x.batch(); ++b) {
    for (int t = 0; t < x.time(); ++t) {
      for (int f = 0; f < x.features(); ++f) {
        EXPECT_NEAR(back.at(b, t, f), x.at(b, t, f), 1e-2);
      }
    }
  }
}

TEST(Scaler, StdOfReportsRawUnits) {
  util::Rng rng(3);
  const nn::Tensor3 x = random_data(400, 2, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  // Feature 2 was generated with std 3.
  EXPECT_NEAR(scaler.std_of(2), 3.0, 0.15);
  EXPECT_NEAR(scaler.mean_of(2), 20.0, 0.3);
}

TEST(Scaler, ConstantFeaturePassesThroughCentered) {
  nn::Tensor3 x(10, 1, 2);
  for (int b = 0; b < 10; ++b) {
    x.at(b, 0, 0) = 7.0f;                        // constant
    x.at(b, 0, 1) = static_cast<float>(b);       // varying
  }
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 z = scaler.transform(x);
  for (int b = 0; b < 10; ++b) {
    EXPECT_FLOAT_EQ(z.at(b, 0, 0), 0.0f);  // centered, unit divisor
  }
  EXPECT_DOUBLE_EQ(scaler.std_of(0), 1.0);
}

TEST(Scaler, SaveLoadRoundtrip) {
  util::Rng rng(4);
  const nn::Tensor3 x = random_data(30, 2, 5, rng);
  StandardScaler a;
  a.fit(x);
  std::stringstream ss;
  a.save(ss);
  StandardScaler b;
  b.load(ss);
  ASSERT_EQ(b.features(), 5);
  for (int f = 0; f < 5; ++f) {
    EXPECT_DOUBLE_EQ(b.mean_of(f), a.mean_of(f));
    EXPECT_DOUBLE_EQ(b.std_of(f), a.std_of(f));
  }
}

TEST(Scaler, UnfittedOperationsThrow) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  nn::Tensor3 x(1, 1, 1);
  EXPECT_THROW(scaler.transform(x), cpsguard::ContractViolation);
  EXPECT_THROW(scaler.std_of(0), cpsguard::ContractViolation);
  std::stringstream ss;
  EXPECT_THROW(scaler.save(ss), cpsguard::ContractViolation);
}

TEST(Scaler, FeatureWidthMismatchThrows) {
  util::Rng rng(5);
  const nn::Tensor3 x = random_data(10, 1, 3, rng);
  StandardScaler scaler;
  scaler.fit(x);
  const nn::Tensor3 wrong = random_data(10, 1, 4, rng);
  EXPECT_THROW(scaler.transform(wrong), cpsguard::ContractViolation);
}

TEST(Scaler, LoadTruncatedStreamThrows) {
  StandardScaler scaler;
  std::stringstream ss("abc");
  EXPECT_THROW(scaler.load(ss), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::monitor

#include "sim/closed_loop.h"

#include <gtest/gtest.h>

#include "safety/hazard.h"
#include "util/rng.h"

namespace cpsguard::sim {
namespace {

class ClosedLoopParamTest : public ::testing::TestWithParam<Testbed> {};

INSTANTIATE_TEST_SUITE_P(BothTestbeds, ClosedLoopParamTest,
                         ::testing::Values(Testbed::kGlucosymOpenAps,
                                           Testbed::kT1dBasalBolus),
                         [](const auto& info) {
                           return info.param == Testbed::kGlucosymOpenAps
                                      ? "Glucosym"
                                      : "T1DS2013";
                         });

Trace run_one(Testbed tb, bool fault, std::uint64_t seed, int steps = 150) {
  auto patient = make_patient(tb);
  auto controller = make_controller(tb);
  const auto profiles = testbed_profiles(tb, 3, 11);
  SimConfig cfg;
  cfg.steps = steps;
  cfg.inject_fault = fault;
  util::Rng rng(seed);
  return run_closed_loop(*patient, *controller, profiles[0], cfg, rng);
}

TEST_P(ClosedLoopParamTest, TraceHasRequestedLength) {
  const Trace t = run_one(GetParam(), false, 1);
  EXPECT_EQ(t.length(), 150);
  for (int i = 0; i < t.length(); ++i) {
    EXPECT_EQ(t.steps[static_cast<std::size_t>(i)].step, i);
  }
}

TEST_P(ClosedLoopParamTest, NominalRunsMostlyInRange) {
  double tir_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    tir_sum += time_in_range(run_one(GetParam(), false, seed));
  }
  EXPECT_GT(tir_sum / 5.0, 0.6)
      << "nominal closed loop should keep BG in range most of the time";
}

TEST_P(ClosedLoopParamTest, FaultCampaignsProduceHazards) {
  int hazardous = 0;
  const int runs = 10;
  for (std::uint64_t seed = 1; seed <= runs; ++seed) {
    const Trace t = run_one(GetParam(), true, seed);
    EXPECT_TRUE(t.fault_injected);
    EXPECT_NE(t.fault_name, "none");
    if (hazard_within(t, 0, t.length() - 1)) ++hazardous;
  }
  EXPECT_GE(hazardous, runs / 3)
      << "a healthy share of fault campaigns must reach a hazard";
}

TEST_P(ClosedLoopParamTest, DeterministicForSameSeed) {
  const Trace a = run_one(GetParam(), true, 77);
  const Trace b = run_one(GetParam(), true, 77);
  ASSERT_EQ(a.length(), b.length());
  for (int i = 0; i < a.length(); ++i) {
    const auto& ra = a.steps[static_cast<std::size_t>(i)];
    const auto& rb = b.steps[static_cast<std::size_t>(i)];
    EXPECT_DOUBLE_EQ(ra.true_bg, rb.true_bg);
    EXPECT_DOUBLE_EQ(ra.sensor_bg, rb.sensor_bg);
    EXPECT_DOUBLE_EQ(ra.commanded_rate, rb.commanded_rate);
    EXPECT_EQ(ra.action, rb.action);
  }
}

TEST_P(ClosedLoopParamTest, SensorSeesNoiseButTracksTruth) {
  const Trace t = run_one(GetParam(), false, 3);
  double max_gap = 0.0;
  for (const auto& r : t.steps) {
    max_gap = std::max(max_gap, std::abs(r.sensor_bg - r.true_bg));
  }
  EXPECT_GT(max_gap, 0.0) << "CGM noise must be present";
  EXPECT_LT(max_gap, 20.0) << "nominal CGM should track true BG";
}

TEST_P(ClosedLoopParamTest, DerivativesAreBoundedAndLagged) {
  const Trace t = run_one(GetParam(), false, 4);
  EXPECT_DOUBLE_EQ(t.steps[0].d_bg, 0.0);  // no history yet
  for (const auto& r : t.steps) {
    EXPECT_LT(std::abs(r.d_bg), 20.0);
    EXPECT_LT(std::abs(r.d_iob), 5.0);
  }
}

TEST_P(ClosedLoopParamTest, ActuatedEqualsCommandedWithoutFaults) {
  const Trace t = run_one(GetParam(), false, 5);
  for (const auto& r : t.steps) {
    EXPECT_DOUBLE_EQ(r.actuated_rate, r.commanded_rate);
    EXPECT_FALSE(r.fault_active);
  }
}

TEST_P(ClosedLoopParamTest, MealsAppearInTrace) {
  const Trace t = run_one(GetParam(), false, 6);
  double total_carbs = 0.0;
  for (const auto& r : t.steps) total_carbs += r.carbs_g;
  EXPECT_GT(total_carbs, 20.0) << "a 12.5 h run should include meals";
}

TEST(TraceHelpers, HazardWithinClampsRange) {
  Trace t;
  for (int i = 0; i < 10; ++i) {
    StepRecord r;
    r.step = i;
    r.true_bg = (i == 9) ? 250.0 : 120.0;
    t.steps.push_back(r);
  }
  EXPECT_TRUE(hazard_within(t, 5, 100));   // clamped end
  EXPECT_TRUE(hazard_within(t, -5, 9));    // clamped start
  EXPECT_FALSE(hazard_within(t, 0, 8));
}

TEST(TraceHelpers, TimeInRangeCountsBounds) {
  Trace t;
  for (double bg : {69.9, 70.0, 120.0, 180.0, 180.1}) {
    StepRecord r;
    r.true_bg = bg;
    t.steps.push_back(r);
  }
  EXPECT_DOUBLE_EQ(time_in_range(t), 3.0 / 5.0);
}

TEST(TraceHelpers, CsvSerializationHasHeaderAndRows) {
  Trace t;
  StepRecord r;
  r.step = 0;
  r.sensor_bg = 100.0;
  t.steps.push_back(r);
  const std::string csv = trace_to_csv(t);
  EXPECT_NE(csv.find("step,sensor_bg"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
}

TEST(TestbedFactories, ProduceMatchingComponents) {
  EXPECT_EQ(make_patient(Testbed::kGlucosymOpenAps)->name(), "Glucosym");
  EXPECT_EQ(make_patient(Testbed::kT1dBasalBolus)->name(), "T1DS2013");
  EXPECT_EQ(make_controller(Testbed::kGlucosymOpenAps)->name(), "OpenAPS");
  EXPECT_EQ(make_controller(Testbed::kT1dBasalBolus)->name(), "Basal-Bolus");
  EXPECT_EQ(to_string(Testbed::kGlucosymOpenAps), "Glucosym(OpenAPS)");
}

}  // namespace
}  // namespace cpsguard::sim

// Layer-level forward/backward checks: analytic gradients of every
// feed-forward layer are pinned against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/feedforward.h"
#include "nn/init.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace cpsguard::nn {
namespace {

Matrix random_matrix(int r, int c, util::Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.data()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

// Scalar objective L = sum(W_out ⊙ layer(x)) with a fixed random W_out; its
// input gradient via layer.backward must match finite differences.
double layer_objective(Layer& layer, const Matrix& x, const Matrix& w_out) {
  const Matrix y = layer.forward(x, /*training=*/false);
  return static_cast<double>(hadamard(y, w_out).sum());
}

void check_input_gradient(Layer& layer, int in, util::Rng& rng,
                          double tol = 2e-2) {
  const Matrix x = random_matrix(3, in, rng);
  const Matrix w_out = random_matrix(3, layer.output_size(), rng);

  layer.forward(x, false);
  const Matrix dx = layer.backward(w_out);

  Matrix probe = x;
  const double eps = 1e-3;
  for (int i = 0; i < probe.rows(); ++i) {
    for (int j = 0; j < probe.cols(); ++j) {
      const float orig = probe.at(i, j);
      probe.at(i, j) = orig + static_cast<float>(eps);
      const double lp = layer_objective(layer, probe, w_out);
      probe.at(i, j) = orig - static_cast<float>(eps);
      const double lm = layer_objective(layer, probe, w_out);
      probe.at(i, j) = orig;
      const double numeric = (lp - lm) / (2 * eps);
      EXPECT_NEAR(dx.at(i, j), numeric, tol) << "input grad at " << i << "," << j;
    }
  }
}

TEST(Dense, ForwardComputesAffine) {
  util::Rng rng(1);
  Dense d(2, 2, rng);
  // Overwrite with known weights for a closed-form check.
  auto params = d.params();
  params[0]->value = Matrix::from_rows({{1, 2}, {3, 4}});
  params[1]->value = Matrix::from_rows({{10, 20}});
  const Matrix y = d.forward(Matrix::from_rows({{1, 1}}), false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2 + 4 + 20);
}

TEST(Dense, BackwardInputGradientMatchesFiniteDifference) {
  util::Rng rng(2);
  Dense d(5, 4, rng);
  check_input_gradient(d, 5, rng);
}

TEST(Dense, BackwardAccumulatesParamGradients) {
  util::Rng rng(3);
  Dense d(3, 2, rng);
  const Matrix x = random_matrix(4, 3, rng);
  const Matrix dy = random_matrix(4, 2, rng);
  d.forward(x, false);
  d.backward(dy);
  const Matrix g1 = d.params()[0]->grad;
  d.forward(x, false);
  d.backward(dy);  // second call without zero_grad accumulates
  const Matrix g2 = d.params()[0]->grad;
  for (int i = 0; i < g1.rows(); ++i) {
    for (int j = 0; j < g1.cols(); ++j) {
      EXPECT_NEAR(g2.at(i, j), 2.0f * g1.at(i, j), 1e-4);
    }
  }
}

TEST(Dense, WeightGradientMatchesFiniteDifference) {
  util::Rng rng(4);
  Dense d(3, 2, rng);
  const Matrix x = random_matrix(2, 3, rng);
  const Matrix w_out = random_matrix(2, 2, rng);

  d.params()[0]->zero_grad();
  d.params()[1]->zero_grad();
  d.forward(x, false);
  d.backward(w_out);
  const Matrix dw = d.params()[0]->grad;
  const Matrix db = d.params()[1]->grad;

  const double eps = 1e-3;
  Matrix& w = d.params()[0]->value;
  for (int i = 0; i < w.rows(); ++i) {
    for (int j = 0; j < w.cols(); ++j) {
      const float orig = w.at(i, j);
      w.at(i, j) = orig + static_cast<float>(eps);
      const double lp = layer_objective(d, x, w_out);
      w.at(i, j) = orig - static_cast<float>(eps);
      const double lm = layer_objective(d, x, w_out);
      w.at(i, j) = orig;
      EXPECT_NEAR(dw.at(i, j), (lp - lm) / (2 * eps), 2e-2);
    }
  }
  Matrix& b = d.params()[1]->value;
  for (int j = 0; j < b.cols(); ++j) {
    const float orig = b.at(0, j);
    b.at(0, j) = orig + static_cast<float>(eps);
    const double lp = layer_objective(d, x, w_out);
    b.at(0, j) = orig - static_cast<float>(eps);
    const double lm = layer_objective(d, x, w_out);
    b.at(0, j) = orig;
    EXPECT_NEAR(db.at(0, j), (lp - lm) / (2 * eps), 2e-2);
  }
}

TEST(Relu, ForwardClampsNegatives) {
  Relu r(3);
  const Matrix y = r.forward(Matrix::from_rows({{-1, 0, 2}}), false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
}

TEST(Relu, BackwardMasksGradient) {
  Relu r(2);
  r.forward(Matrix::from_rows({{-1, 3}}), false);
  const Matrix dx = r.backward(Matrix::from_rows({{5, 7}}));
  EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dx.at(0, 1), 7.0f);
}

TEST(Tanh, MatchesStdTanhAndGradient) {
  util::Rng rng(5);
  Tanh t(4);
  const Matrix x = random_matrix(2, 4, rng);
  const Matrix y = t.forward(x, false);
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      EXPECT_NEAR(y.at(i, j), std::tanh(x.at(i, j)), 1e-6);
    }
  }
  check_input_gradient(t, 4, rng);
}

TEST(Sigmoid, RangeAndGradient) {
  util::Rng rng(6);
  Sigmoid s(4);
  const Matrix x = random_matrix(3, 4, rng);
  const Matrix y = s.forward(x, false);
  for (float v : y.data()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
  check_input_gradient(s, 4, rng);
}

TEST(Sigmoid, StableForExtremeInputs) {
  EXPECT_NEAR(sigmoid(50.0f), 1.0f, 1e-6);
  EXPECT_NEAR(sigmoid(-50.0f), 0.0f, 1e-6);
  EXPECT_FALSE(std::isnan(sigmoid(-1000.0f)));
}

TEST(Dropout, InferenceIsIdentity) {
  util::Rng rng(7);
  Dropout d(3, 0.5, rng);
  const Matrix x = Matrix::from_rows({{1, 2, 3}});
  EXPECT_TRUE(d.forward(x, false) == x);
}

TEST(Dropout, TrainingZerosApproxRateAndRescales) {
  util::Rng rng(8);
  Dropout d(1000, 0.4, rng);
  const Matrix x = Matrix::full(1, 1000, 1.0f);
  const Matrix y = d.forward(x, true);
  int zeros = 0;
  for (float v : y.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.4, 0.06);
}

TEST(Dropout, BackwardUsesSameMask) {
  util::Rng rng(9);
  Dropout d(100, 0.5, rng);
  const Matrix x = Matrix::full(1, 100, 1.0f);
  const Matrix y = d.forward(x, true);
  const Matrix dx = d.backward(Matrix::full(1, 100, 1.0f));
  for (int j = 0; j < 100; ++j) {
    EXPECT_FLOAT_EQ(dx.at(0, j), y.at(0, j));  // same mask, same scaling
  }
}

TEST(Dropout, RejectsBadRate) {
  util::Rng rng(10);
  EXPECT_THROW(Dropout(3, 1.0, rng), ContractViolation);
  EXPECT_THROW(Dropout(3, -0.1, rng), ContractViolation);
}

TEST(FeedForward, ChainsLayersAndValidatesShapes) {
  util::Rng rng(11);
  FeedForward net;
  net.add(std::make_unique<Dense>(4, 8, rng));
  net.add(std::make_unique<Relu>(8));
  net.add(std::make_unique<Dense>(8, 2, rng));
  EXPECT_EQ(net.input_size(), 4);
  EXPECT_EQ(net.output_size(), 2);
  EXPECT_EQ(net.layer_count(), 3u);
  const Matrix y = net.forward(random_matrix(5, 4, rng), false);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 2);
}

TEST(FeedForward, RejectsMismatchedLayer) {
  util::Rng rng(12);
  FeedForward net;
  net.add(std::make_unique<Dense>(4, 8, rng));
  EXPECT_THROW(net.add(std::make_unique<Dense>(9, 2, rng)), ContractViolation);
}

TEST(FeedForward, EndToEndInputGradient) {
  util::Rng rng(13);
  FeedForward net;
  net.add(std::make_unique<Dense>(3, 6, rng));
  net.add(std::make_unique<Tanh>(6));
  net.add(std::make_unique<Dense>(6, 2, rng));

  const Matrix x = random_matrix(2, 3, rng);
  const Matrix w_out = random_matrix(2, 2, rng);
  net.forward(x, false);
  const Matrix dx = net.backward(w_out);

  const double eps = 1e-3;
  Matrix probe = x;
  for (int i = 0; i < probe.rows(); ++i) {
    for (int j = 0; j < probe.cols(); ++j) {
      const float orig = probe.at(i, j);
      probe.at(i, j) = orig + static_cast<float>(eps);
      const double lp = static_cast<double>(hadamard(net.forward(probe, false), w_out).sum());
      probe.at(i, j) = orig - static_cast<float>(eps);
      const double lm = static_cast<double>(hadamard(net.forward(probe, false), w_out).sum());
      probe.at(i, j) = orig;
      EXPECT_NEAR(dx.at(i, j), (lp - lm) / (2 * eps), 2e-2);
    }
  }
}

TEST(Init, GlorotWithinLimit) {
  util::Rng rng(14);
  const Matrix w = glorot_uniform(10, 20, rng);
  const double limit = std::sqrt(6.0 / 30.0);
  for (float v : w.data()) {
    EXPECT_LE(std::fabs(v), limit + 1e-6);
  }
}

TEST(Init, HeNormalStddev) {
  util::Rng rng(15);
  const Matrix w = he_normal(100, 200, rng);
  double sum = 0.0, sq = 0.0;
  for (float v : w.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = w.size();
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(std::sqrt(var), std::sqrt(2.0 / 100.0), 0.01);
}

}  // namespace
}  // namespace cpsguard::nn

// Loadgen subsystem suite: traffic-model purity and shape, heavy-tailed
// session lengths, churner determinism and reconnect behaviour, the
// InvariantChecker's violation detection, the engine's idle-TTL eviction
// and stats snapshot, and a small end-to-end workload with the
// serial-vs-pooled and TTL-equivalence byte-identity oracles. The long
// profile of the same oracles lives in test_loadgen_soak.cpp (ctest -L
// soak).
#include "loadgen/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/experiment.h"
#include "loadgen/churner.h"
#include "loadgen/invariants.h"
#include "loadgen/traffic.h"
#include "serve/engine.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cpsguard::loadgen {
namespace {

using cpsguard::ContractViolation;

// ---- traffic models --------------------------------------------------------

TEST(Traffic, SteadyTargetIsFlat) {
  TrafficConfig cfg;
  cfg.model = TrafficModel::kSteady;
  cfg.base_sessions = 17;
  for (std::int64_t t : {0, 1, 5, 100, 100000}) {
    EXPECT_EQ(target_sessions(cfg, t), 17) << t;
  }
}

TEST(Traffic, DiurnalSwellsBetweenBaseAndPeakAndIsPeriodic) {
  TrafficConfig cfg;
  cfg.model = TrafficModel::kDiurnal;
  cfg.base_sessions = 64;
  cfg.peak = 2.0;
  cfg.period = 48;
  EXPECT_EQ(target_sessions(cfg, 0), 64);  // trough at phase 0
  const int crest = target_sessions(cfg, cfg.period / 2);
  EXPECT_GE(crest, 127);
  EXPECT_LE(crest, 128);
  for (std::int64_t t = 0; t < cfg.period; ++t) {
    const int target = target_sessions(cfg, t);
    EXPECT_GE(target, 64) << t;
    EXPECT_LE(target, 128) << t;
    // Pure and periodic: same tick (mod period) -> same target, always.
    EXPECT_EQ(target, target_sessions(cfg, t)) << t;
    EXPECT_EQ(target, target_sessions(cfg, t + cfg.period)) << t;
  }
}

TEST(Traffic, FlashCrowdSpikesOnlyInsideWindow) {
  TrafficConfig cfg;
  cfg.model = TrafficModel::kFlashCrowd;
  cfg.base_sessions = 50;
  cfg.peak = 3.0;
  cfg.flash_at = 16;
  cfg.flash_len = 8;
  EXPECT_EQ(target_sessions(cfg, 15), 50);
  EXPECT_EQ(target_sessions(cfg, 16), 150);
  EXPECT_EQ(target_sessions(cfg, 23), 150);
  EXPECT_EQ(target_sessions(cfg, 24), 50);
  EXPECT_EQ(target_sessions(cfg, 0), 50);
}

TEST(Traffic, ModelNamesRoundTrip) {
  for (TrafficModel model : {TrafficModel::kSteady, TrafficModel::kDiurnal,
                             TrafficModel::kFlashCrowd}) {
    const auto parsed = parse_traffic_model(to_string(model));
    ASSERT_TRUE(parsed.has_value()) << to_string(model);
    EXPECT_EQ(*parsed, model);
  }
  EXPECT_FALSE(parse_traffic_model("bogus").has_value());
  EXPECT_FALSE(parse_traffic_model("").has_value());
  EXPECT_FALSE(parse_traffic_model("Steady").has_value());
}

TEST(Traffic, SessionLengthsAreBoundedHeavyTailedAndSeeded) {
  TrafficConfig cfg;
  cfg.min_session_len = 8;
  cfg.max_session_len = 4096;
  cfg.tail_alpha = 1.5;
  util::Rng rng(99);
  int over_4x = 0;
  for (int i = 0; i < 2000; ++i) {
    const int len = sample_session_length(cfg, rng);
    ASSERT_GE(len, cfg.min_session_len);
    ASSERT_LE(len, cfg.max_session_len);
    if (len > 4 * cfg.min_session_len) ++over_4x;
  }
  // Pareto(8, 1.5): P(len > 32) = 4^-1.5 = 12.5% per draw — a heavy tail
  // shows up hundreds of times in 2000 draws, never zero.
  EXPECT_GT(over_4x, 50);

  util::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sample_session_length(cfg, a), sample_session_length(cfg, b));
  }
}

TEST(Traffic, ValidateRejectsBadConfigs) {
  const auto reject = [](auto mutate) {
    TrafficConfig cfg;
    mutate(cfg);
    EXPECT_THROW(validate(cfg), ContractViolation);
  };
  reject([](TrafficConfig& c) { c.base_sessions = 0; });
  reject([](TrafficConfig& c) { c.peak = 0.5; });
  reject([](TrafficConfig& c) { c.period = 0; });
  reject([](TrafficConfig& c) { c.min_session_len = 0; });
  reject([](TrafficConfig& c) { c.max_session_len = c.min_session_len - 1; });
  reject([](TrafficConfig& c) { c.tail_alpha = 0.0; });
  reject([](TrafficConfig& c) { c.abandon_prob = 1.5; });
  reject([](TrafficConfig& c) { c.reconnect_prob = -0.1; });
  reject([](TrafficConfig& c) { c.reconnect_delay_min = 0; });
  reject([](TrafficConfig& c) { c.reconnect_delay_max = 1; });
  validate(TrafficConfig{});  // defaults are valid
}

// ---- session churner -------------------------------------------------------

TrafficConfig churny_traffic() {
  TrafficConfig cfg;
  cfg.model = TrafficModel::kSteady;
  cfg.base_sessions = 24;
  cfg.min_session_len = 2;
  cfg.max_session_len = 30;
  cfg.tail_alpha = 1.2;
  cfg.reconnect_prob = 0.6;
  cfg.abandon_prob = 0.2;
  cfg.reconnect_delay_min = 2;
  cfg.reconnect_delay_max = 6;
  return cfg;
}

TEST(Churner, SameSeedReplaysIdenticalPlans) {
  SessionChurner a(churny_traffic(), 1234);
  SessionChurner b(churny_traffic(), 1234);
  for (std::int64_t t = 0; t < 80; ++t) {
    const TickPlan pa = a.plan(t);
    const TickPlan pb = b.plan(t);
    ASSERT_EQ(pa.closes, pb.closes) << "tick " << t;
    ASSERT_EQ(pa.submits, pb.submits) << "tick " << t;
  }
  EXPECT_EQ(a.stats().joins, b.stats().joins);
  EXPECT_EQ(a.stats().rejoins, b.stats().rejoins);
  EXPECT_EQ(a.stats().closes, b.stats().closes);
  EXPECT_EQ(a.stats().abandons, b.stats().abandons);
}

TEST(Churner, TracksTrafficTargetExactly) {
  TrafficConfig cfg = churny_traffic();
  cfg.model = TrafficModel::kDiurnal;
  cfg.peak = 2.5;
  cfg.period = 20;
  SessionChurner churner(cfg, 5);
  for (std::int64_t t = 0; t < 100; ++t) {
    const TickPlan plan = churner.plan(t);
    // After every plan the active population sits exactly on the model's
    // concurrency target, and every active session submits once.
    EXPECT_EQ(plan.submits.size(),
              static_cast<std::size_t>(target_sessions(cfg, t)))
        << "tick " << t;
    EXPECT_TRUE(std::is_sorted(plan.submits.begin(), plan.submits.end()));
    EXPECT_TRUE(std::is_sorted(plan.closes.begin(), plan.closes.end()));
  }
  EXPECT_GT(churner.stats().closes, 0u);
}

TEST(Churner, ImmortalSessionsNeverChurn) {
  TrafficConfig cfg;
  cfg.base_sessions = 10;
  cfg.min_session_len = 1000;
  cfg.max_session_len = 1000;
  SessionChurner churner(cfg, 3);
  for (std::int64_t t = 0; t < 60; ++t) {
    const TickPlan plan = churner.plan(t);
    EXPECT_TRUE(plan.closes.empty()) << "tick " << t;
    EXPECT_EQ(plan.submits.size(), 10u) << "tick " << t;
  }
  EXPECT_EQ(churner.stats().joins, 10u);
  EXPECT_EQ(churner.stats().distinct_sessions(), 10u);
  EXPECT_EQ(churner.stats().closes, 0u);
  EXPECT_EQ(churner.stats().rejoins, 0u);
}

TEST(Churner, LeaversReconnectUnderTheSameId) {
  TrafficConfig cfg = churny_traffic();
  cfg.reconnect_prob = 1.0;
  cfg.abandon_prob = 0.0;
  SessionChurner churner(cfg, 21);
  std::vector<serve::SessionId> closed;
  bool reused = false;
  for (std::int64_t t = 0; t < 120; ++t) {
    const TickPlan plan = churner.plan(t);
    for (const serve::SessionId id : plan.submits) {
      if (std::find(closed.begin(), closed.end(), id) != closed.end()) {
        reused = true;
      }
    }
    closed.insert(closed.end(), plan.closes.begin(), plan.closes.end());
  }
  EXPECT_GT(churner.stats().closes, 0u);
  EXPECT_GT(churner.stats().rejoins, 0u);
  EXPECT_TRUE(reused) << "no closed session id ever submitted again";
}

TEST(Churner, AbandonersLeaveWithoutClosing) {
  TrafficConfig cfg = churny_traffic();
  cfg.abandon_prob = 1.0;
  cfg.reconnect_prob = 0.0;
  SessionChurner churner(cfg, 8);
  for (std::int64_t t = 0; t < 60; ++t) {
    const TickPlan plan = churner.plan(t);
    EXPECT_TRUE(plan.closes.empty()) << "tick " << t;
  }
  EXPECT_GT(churner.stats().abandons, 0u);
  EXPECT_EQ(churner.stats().closes, 0u);
}

TEST(Churner, RequiresConsecutiveTicks) {
  SessionChurner skipper(churny_traffic(), 1);
  EXPECT_THROW((void)skipper.plan(1), ContractViolation);
  SessionChurner churner(churny_traffic(), 1);
  (void)churner.plan(0);
  EXPECT_THROW((void)churner.plan(2), ContractViolation);
  EXPECT_THROW((void)churner.plan(0), ContractViolation);
}

// ---- invariant checker -----------------------------------------------------

serve::VerdictEvent verdict(serve::SessionId session, int cycle,
                            std::int64_t ingest_tick) {
  serve::VerdictEvent ev;
  ev.session = session;
  ev.cycle = cycle;
  ev.prediction = 0;
  ev.p_unsafe = 0.25;
  ev.ingest_tick = ingest_tick;
  return ev;
}

TEST(InvariantCheckerTest, AcceptsAConformingRun) {
  InvariantChecker checker(/*window=*/3, /*queue_bound=*/8);
  for (int i = 0; i < 4; ++i) checker.on_accepted(7);
  checker.on_queue_depth(2);
  const std::vector<serve::VerdictEvent> events = {verdict(7, 2, 0),
                                                   verdict(7, 3, 0)};
  checker.on_verdicts(events, /*drain_tick=*/1);
  checker.on_tick_complete(0);
  checker.finish(0);
  EXPECT_EQ(checker.accepted(), 4u);
  EXPECT_EQ(checker.verdicts(), 2u);
  EXPECT_EQ(checker.max_queue_depth(), 2u);
  // Both verdicts drained 1 tick after ingest.
  ASSERT_EQ(checker.latency_counts().size(), 2u);
  EXPECT_EQ(checker.latency_counts()[1], 2u);
}

TEST(InvariantCheckerTest, CatchesVerdictWithoutCompletedWindow) {
  InvariantChecker checker(3, 8);
  const std::vector<serve::VerdictEvent> events = {verdict(7, 2, 0)};
  EXPECT_THROW(checker.on_verdicts(events, 1), InvariantViolation);

  InvariantChecker warm(3, 8);
  warm.on_accepted(7);
  warm.on_accepted(7);  // two records: window never completes
  EXPECT_THROW(warm.on_verdicts(events, 1), InvariantViolation);
}

TEST(InvariantCheckerTest, CatchesOutOfOrderCycles) {
  InvariantChecker checker(3, 8);
  for (int i = 0; i < 4; ++i) checker.on_accepted(7);  // expects 2 then 3
  const std::vector<serve::VerdictEvent> events = {verdict(7, 3, 0)};
  EXPECT_THROW(checker.on_verdicts(events, 1), InvariantViolation);
}

TEST(InvariantCheckerTest, CatchesNegativeLatency) {
  InvariantChecker checker(3, 8);
  for (int i = 0; i < 3; ++i) checker.on_accepted(7);
  const std::vector<serve::VerdictEvent> events = {verdict(7, 2, 5)};
  EXPECT_THROW(checker.on_verdicts(events, /*drain_tick=*/4),
               InvariantViolation);
}

TEST(InvariantCheckerTest, CatchesQueueBreaches) {
  InvariantChecker checker(3, 8);
  checker.on_queue_depth(8);  // at the bound: fine
  EXPECT_THROW(checker.on_queue_depth(9), InvariantViolation);
  EXPECT_THROW(checker.on_tick_complete(1), InvariantViolation);
  checker.on_tick_complete(0);
}

TEST(InvariantCheckerTest, CatchesOutstandingVerdictsAtFinish) {
  InvariantChecker checker(3, 8);
  for (int i = 0; i < 3; ++i) checker.on_accepted(7);
  EXPECT_THROW(checker.finish(0), InvariantViolation);
  const std::vector<serve::VerdictEvent> events = {verdict(7, 2, 0)};
  checker.on_verdicts(events, 0);
  checker.finish(0);
  EXPECT_THROW(checker.finish(1), InvariantViolation);
}

TEST(InvariantCheckerTest, SessionEndStartsFreshEpochButDrainsOldWindows) {
  InvariantChecker checker(3, 8);
  for (int i = 0; i < 3; ++i) checker.on_accepted(7);  // stages cycle 2
  checker.on_session_end(7);
  for (int i = 0; i < 3; ++i) checker.on_accepted(7);  // stages cycle 2 again
  const std::vector<serve::VerdictEvent> events = {verdict(7, 2, 0),
                                                   verdict(7, 2, 1)};
  checker.on_verdicts(events, 1);
  checker.finish(0);
}

TEST(InvariantCheckerTest, LatencyPercentilesAreExact) {
  EXPECT_EQ(latency_percentile({}, 0.5), 0.0);
  EXPECT_EQ(latency_percentile({0, 0, 4}, 0.0), 2.0);
  EXPECT_EQ(latency_percentile({0, 0, 4}, 0.5), 2.0);
  EXPECT_EQ(latency_percentile({0, 0, 4}, 1.0), 2.0);
  // 50 zeros, 49 ones, 1 three: p50 = 0, p99 = 1, p100 = 3.
  const std::vector<std::uint64_t> counts = {50, 49, 0, 1};
  EXPECT_EQ(latency_percentile(counts, 0.50), 0.0);
  EXPECT_EQ(latency_percentile(counts, 0.99), 1.0);
  EXPECT_EQ(latency_percentile(counts, 1.0), 3.0);
}

// ---- engine growth: TTL eviction, stats ------------------------------------

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig cfg;
  cfg.campaign.patients = 3;
  cfg.campaign.sims_per_patient = 3;
  cfg.campaign.trace_steps = 60;
  cfg.campaign.seed = 11;
  cfg.epochs = 2;
  cfg.cache_dir = "";
  return cfg;
}

class LoadgenEngineTest : public ::testing::Test {
 protected:
  LoadgenEngineTest() : exp_(tiny_config()) {}

  monitor::MlMonitor& mon() { return exp_.monitor(mlp_); }
  int window() const { return exp_.config().dataset.window; }

  core::Experiment exp_;
  const core::MonitorVariant mlp_{monitor::Arch::kMlp, false};
};

TEST_F(LoadgenEngineTest, TtlEvictsIdleSessionsDeterministically) {
  serve::EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 1;  // one shard so eviction order is pure ascending-id
  cfg.idle_ttl_ticks = 2;
  cfg.max_sessions = 3;
  serve::Engine engine(mon(), cfg);
  const auto& rec = exp_.test_traces().front().steps[0];

  // A and B join at tick 0 and go idle; C keeps streaming.
  engine.submit(30, rec);
  engine.submit(10, rec);
  engine.submit(20, rec);
  int evicted_at = -1;
  std::vector<serve::SessionId> evicted;
  for (int t = 0; t < 6 && evicted_at < 0; ++t) {
    engine.submit(20, rec);  // keeps its last_seen fresh
    (void)engine.tick();
    if (!engine.evicted_last_tick().empty()) {
      evicted_at = t;
      evicted = engine.evicted_last_tick();
    }
  }
  // last_seen = 0; eviction fires during the tick where now - ttl > 0,
  // i.e. the first tick after more than idle_ttl_ticks idle ticks.
  ASSERT_EQ(evicted_at, 3);
  EXPECT_EQ(evicted, (std::vector<serve::SessionId>{10, 30}));
  EXPECT_EQ(engine.sessions_active(), 1u);
  EXPECT_EQ(engine.stats().evicted, 2u);

  // Eviction returned the budget slots, and the ids can readmit.
  EXPECT_EQ(engine.try_submit(40, rec), serve::SubmitStatus::kAccepted);
  EXPECT_EQ(engine.try_submit(10, rec), serve::SubmitStatus::kAccepted);
  EXPECT_EQ(engine.try_submit(50, rec),
            serve::SubmitStatus::kRejectedSessionLimit);
  EXPECT_TRUE(engine.evicted_last_tick().empty() ||
              engine.tick().empty());  // log rewritten per tick
}

TEST_F(LoadgenEngineTest, TtlDisabledNeverEvicts) {
  serve::EngineConfig cfg;
  cfg.window = window();
  cfg.idle_ttl_ticks = 0;
  serve::Engine engine(mon(), cfg);
  const auto& rec = exp_.test_traces().front().steps[0];
  engine.submit(1, rec);
  for (int t = 0; t < 10; ++t) {
    (void)engine.tick();
    EXPECT_TRUE(engine.evicted_last_tick().empty());
  }
  EXPECT_EQ(engine.sessions_active(), 1u);

  serve::EngineConfig bad = cfg;
  bad.idle_ttl_ticks = -1;
  EXPECT_THROW(serve::Engine(mon(), bad), ContractViolation);
}

TEST_F(LoadgenEngineTest, StatsSnapshotAggregatesShards) {
  serve::EngineConfig cfg;
  cfg.window = window();
  cfg.shards = 4;
  serve::Engine engine(mon(), cfg);
  const sim::Trace& trace = exp_.test_traces().front();

  const int records = window() + 5;
  for (int t = 0; t < records; ++t) {
    for (serve::SessionId id : {1ULL, 2ULL, 3ULL}) {
      engine.submit(id, trace.steps[static_cast<std::size_t>(t)]);
    }
  }
  std::size_t verdicts = engine.tick().size();
  (void)engine.close_session(2);
  verdicts += engine.tick().size();

  const serve::EngineStats stats = engine.stats();
  EXPECT_EQ(stats.ticks, 2);
  EXPECT_EQ(stats.ticks, engine.ticks());
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.records, static_cast<std::uint64_t>(records) * 3u);
  EXPECT_EQ(stats.windows_flushed, verdicts);
  EXPECT_EQ(stats.closed, 1u);
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.rejected_session_limit, 0u);
  ASSERT_EQ(stats.shards.size(), 4u);
  std::uint64_t shard_records = 0;
  for (const auto& shard : stats.shards) shard_records += shard.records;
  EXPECT_EQ(shard_records, stats.records);
  EXPECT_GT(stats.flushes, 0u);
}

// ---- end-to-end workload ----------------------------------------------------

class WorkloadTest : public LoadgenEngineTest {
 protected:
  WorkloadConfig small_config() {
    WorkloadConfig cfg;
    cfg.traffic.model = TrafficModel::kDiurnal;
    cfg.traffic.base_sessions = 12;
    cfg.traffic.peak = 2.0;
    cfg.traffic.period = 20;
    cfg.traffic.min_session_len = 4;
    cfg.traffic.max_session_len = 48;
    cfg.traffic.tail_alpha = 1.3;
    cfg.traffic.abandon_prob = 0.3;
    cfg.traffic.reconnect_prob = 0.5;
    cfg.engine.window = window();
    cfg.engine.shards = 4;
    cfg.engine.max_batch = 8;
    cfg.engine.queue_capacity = 256;
    cfg.engine.idle_ttl_ticks = 5;
    cfg.ticks = 60;
    cfg.seed = 7;
    return cfg;
  }
};

TEST_F(WorkloadTest, RecordSourceIsPureInIdAndTick) {
  Workload wl(mon(), exp_.test_traces(), small_config());
  const auto& a = wl.record_for(42, 13);
  const auto& b = wl.record_for(42, 13);
  EXPECT_EQ(&a, &b);  // same underlying step, not just equal values
}

TEST_F(WorkloadTest, ChurnedRunHoldsInvariantsAndCountsAddUp) {
  Workload wl(mon(), exp_.test_traces(), small_config());
  util::set_max_parallelism(1);
  const WorkloadReport report = wl.run();  // throws on any violation
  util::set_max_parallelism(0);

  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.verdicts, 0u);
  EXPECT_GT(report.rejoins, 0u);
  EXPECT_GT(report.evictions, 0u);  // abandoners only leave via TTL
  EXPECT_EQ(report.final_stats.records, report.accepted);
  EXPECT_EQ(report.final_stats.windows_flushed, report.verdicts);
  EXPECT_EQ(report.final_stats.evicted, report.evictions);
  EXPECT_EQ(report.eviction_log.size(), report.evictions);
  EXPECT_EQ(report.stream_sha256.size(), 64u);
  std::uint64_t latency_total = 0;
  for (const std::uint64_t c : report.latency_counts) latency_total += c;
  EXPECT_EQ(latency_total, report.verdicts);
  // Draining every cycle: every verdict lands in the same tick it was
  // completed in.
  EXPECT_EQ(latency_percentile(report.latency_counts, 1.0), 0.0);
}

TEST_F(WorkloadTest, SerialAndPooledRunsAreByteIdentical) {
  WorkloadConfig cfg = small_config();
  cfg.record_stream = true;
  Workload wl(mon(), exp_.test_traces(), cfg);
  util::set_max_parallelism(1);
  const WorkloadReport serial = wl.run();
  util::set_max_parallelism(0);
  const WorkloadReport pooled = wl.run();
  ASSERT_FALSE(serial.stream.empty());
  EXPECT_EQ(serial.stream, pooled.stream);
  EXPECT_EQ(serial.stream_sha256, pooled.stream_sha256);
  EXPECT_EQ(serial.verdicts, pooled.verdicts);
  EXPECT_EQ(serial.eviction_log.size(), pooled.eviction_log.size());
}

TEST_F(WorkloadTest, TtlEvictionIsEquivalentToExplicitClose) {
  // Run A evicts idle sessions by TTL; run B has TTL off and replays A's
  // eviction log as explicit closes at the same tick boundaries. The
  // verdict streams must match byte for byte.
  WorkloadConfig with_ttl = small_config();
  Workload wl_a(mon(), exp_.test_traces(), with_ttl);
  util::set_max_parallelism(1);
  const WorkloadReport a = wl_a.run();
  ASSERT_GT(a.eviction_log.size(), 0u);

  WorkloadConfig no_ttl = with_ttl;
  no_ttl.engine.idle_ttl_ticks = 0;
  Workload wl_b(mon(), exp_.test_traces(), no_ttl);
  const WorkloadReport b = wl_b.run(a.eviction_log);
  util::set_max_parallelism(0);
  EXPECT_EQ(b.evictions, 0u);
  EXPECT_EQ(a.stream_sha256, b.stream_sha256)
      << "TTL eviction is not equivalent to closing at the eviction tick";
  EXPECT_EQ(a.verdicts, b.verdicts);
}

TEST_F(WorkloadTest, RejectsBadConfigs) {
  WorkloadConfig cfg = small_config();
  cfg.ticks = 0;
  EXPECT_THROW(Workload(mon(), exp_.test_traces(), cfg), ContractViolation);
  EXPECT_THROW(Workload(mon(), {}, small_config()), ContractViolation);
}

}  // namespace
}  // namespace cpsguard::loadgen

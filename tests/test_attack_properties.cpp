// Property-based tests for the attack implementations: for randomized
// inputs across several seeds, every crafted perturbation must stay inside
// its L-infinity budget, touch only masked features, stay NaN-free for
// finite inputs, and be bit-reproducible for equal seeds.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "attack/fgsm.h"
#include "attack/nes.h"
#include "attack/pgd.h"
#include "attack/universal.h"
#include "nn/classifier.h"
#include "util/rng.h"

namespace cpsguard::attack {
namespace {

constexpr int kTime = 6;
constexpr int kFeatures = 9;

nn::Tensor3 random_tensor(int batch, util::Rng& rng) {
  nn::Tensor3 x(batch, kTime, kFeatures);
  for (float& v : x.data()) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  return x;
}

std::vector<int> alternating_labels(int batch) {
  std::vector<int> y(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) y[static_cast<std::size_t>(i)] = i % 2;
  return y;
}

nn::MlpClassifier make_classifier(std::uint64_t seed) {
  util::Rng rng(seed);
  return nn::MlpClassifier(kTime, kFeatures, {16, 8}, 2, rng);
}

std::vector<float> as_vec(const nn::Tensor3& t) {
  return {t.data().begin(), t.data().end()};
}

void expect_finite(const nn::Tensor3& t, const char* what) {
  for (const float v : t.data()) {
    ASSERT_TRUE(std::isfinite(v)) << what << " produced non-finite value";
  }
}

/// Max |adv - x| over features OUTSIDE the mask — must be exactly zero.
double off_mask_delta(const nn::Tensor3& adv, const nn::Tensor3& x,
                      FeatureMask mask) {
  double worst = 0.0;
  for (int b = 0; b < x.batch(); ++b) {
    for (int t = 0; t < x.time(); ++t) {
      for (int f = 0; f < x.features(); ++f) {
        if (feature_in_mask(f, mask)) continue;
        worst = std::max(
            worst, std::abs(static_cast<double>(adv.at(b, t, f) - x.at(b, t, f))));
      }
    }
  }
  return worst;
}

class AttackProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttackProperties, FgsmStaysInEpsilonBall) {
  const std::uint64_t seed = GetParam();
  auto clf = make_classifier(seed);
  util::Rng rng(seed ^ 0x5eed);
  const nn::Tensor3 x = random_tensor(12, rng);
  const auto y = alternating_labels(12);
  for (const double eps : {0.01, 0.1, 0.3}) {
    FgsmConfig fc;
    fc.epsilon = eps;
    const nn::Tensor3 adv = fgsm_attack(clf, x, y, fc);
    expect_finite(adv, "fgsm");
    EXPECT_LE(linf_distance(adv, x), eps + 1e-5);
  }
}

TEST_P(AttackProperties, PgdStaysInEpsilonBall) {
  const std::uint64_t seed = GetParam();
  auto clf = make_classifier(seed);
  util::Rng rng(seed ^ 0x9e3779b9);
  const nn::Tensor3 x = random_tensor(10, rng);
  const auto y = alternating_labels(10);
  PgdConfig pc;
  pc.epsilon = 0.1;
  pc.step_size = 0.05;  // deliberately > eps/iterations: projection must hold
  pc.iterations = 5;
  const nn::Tensor3 adv = pgd_attack(clf, x, y, pc);
  expect_finite(adv, "pgd");
  EXPECT_LE(linf_distance(adv, x), pc.epsilon + 1e-5);
}

TEST_P(AttackProperties, NesStaysInEpsilonBall) {
  const std::uint64_t seed = GetParam();
  auto clf = make_classifier(seed);
  util::Rng rng(seed ^ 0xabcdef);
  const nn::Tensor3 x = random_tensor(6, rng);
  const auto y = alternating_labels(6);
  NesConfig nc;
  nc.epsilon = 0.15;
  nc.iterations = 3;
  nc.samples = 6;
  nc.seed = seed;
  const nn::Tensor3 adv = nes_attack(clf, x, y, nc);
  expect_finite(adv, "nes");
  EXPECT_LE(linf_distance(adv, x), nc.epsilon + 1e-5);
}

TEST_P(AttackProperties, UniversalDeltaStaysInEpsilonBall) {
  const std::uint64_t seed = GetParam();
  auto clf = make_classifier(seed);
  util::Rng rng(seed ^ 0x777);
  const nn::Tensor3 x = random_tensor(16, rng);
  const auto y = alternating_labels(16);
  UniversalConfig uc;
  uc.epsilon = 0.2;
  uc.epochs = 2;
  uc.batch_size = 8;
  const nn::Tensor3 delta = craft_universal_perturbation(clf, x, y, uc);
  expect_finite(delta, "universal");
  EXPECT_EQ(delta.batch(), 1);
  double worst = 0.0;
  for (const float v : delta.data()) {
    worst = std::max(worst, std::abs(static_cast<double>(v)));
  }
  EXPECT_LE(worst, uc.epsilon + 1e-5);

  const nn::Tensor3 adv = apply_universal_perturbation(x, delta);
  expect_finite(adv, "universal-apply");
  EXPECT_LE(linf_distance(adv, x), uc.epsilon + 1e-5);
}

TEST_P(AttackProperties, MasksLeaveOffMaskFeaturesUntouched) {
  const std::uint64_t seed = GetParam();
  auto clf = make_classifier(seed);
  util::Rng rng(seed ^ 0x31415);
  const nn::Tensor3 x = random_tensor(8, rng);
  const auto y = alternating_labels(8);
  for (const FeatureMask mask :
       {FeatureMask::kSensorsOnly, FeatureMask::kCommandsOnly}) {
    FgsmConfig fc;
    fc.epsilon = 0.2;
    fc.mask = mask;
    EXPECT_EQ(off_mask_delta(fgsm_attack(clf, x, y, fc), x, mask), 0.0)
        << "fgsm wrote outside mask " << to_string(mask);

    PgdConfig pc;
    pc.epsilon = 0.2;
    pc.mask = mask;
    pc.iterations = 3;
    EXPECT_EQ(off_mask_delta(pgd_attack(clf, x, y, pc), x, mask), 0.0)
        << "pgd wrote outside mask " << to_string(mask);

    NesConfig nc;
    nc.epsilon = 0.2;
    nc.iterations = 2;
    nc.samples = 4;
    nc.mask = mask;
    nc.seed = seed;
    EXPECT_EQ(off_mask_delta(nes_attack(clf, x, y, nc), x, mask), 0.0)
        << "nes wrote outside mask " << to_string(mask);
  }
}

TEST_P(AttackProperties, EqualSeedsGiveBitIdenticalOutputs) {
  const std::uint64_t seed = GetParam();
  auto clf = make_classifier(seed);
  util::Rng rng(seed ^ 0x8888);
  const nn::Tensor3 x = random_tensor(8, rng);
  const auto y = alternating_labels(8);

  // FGSM and PGD are deterministic functions of (model, input).
  FgsmConfig fc;
  fc.epsilon = 0.1;
  EXPECT_EQ(as_vec(fgsm_attack(clf, x, y, fc)), as_vec(fgsm_attack(clf, x, y, fc)));
  PgdConfig pc;
  pc.epsilon = 0.1;
  pc.iterations = 4;
  EXPECT_EQ(as_vec(pgd_attack(clf, x, y, pc)), as_vec(pgd_attack(clf, x, y, pc)));

  // NES is stochastic but fully seeded.
  NesConfig nc;
  nc.epsilon = 0.1;
  nc.iterations = 2;
  nc.samples = 4;
  nc.seed = seed;
  EXPECT_EQ(as_vec(nes_attack(clf, x, y, nc)), as_vec(nes_attack(clf, x, y, nc)));
  NesConfig other = nc;
  other.seed = seed + 1;
  // Different seed -> different probes (overwhelmingly likely to differ).
  EXPECT_NE(as_vec(nes_attack(clf, x, y, nc)),
            as_vec(nes_attack(clf, x, y, other)));

  UniversalConfig uc;
  uc.epsilon = 0.1;
  uc.epochs = 2;
  uc.batch_size = 4;
  EXPECT_EQ(as_vec(craft_universal_perturbation(clf, x, y, uc)),
            as_vec(craft_universal_perturbation(clf, x, y, uc)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackProperties,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace cpsguard::attack

// Table I rules: every one of the 12 formulas fires on a crafted matching
// context and stays quiet on safe contexts; the semantic indicator equals
// the disjunction.
#include "safety/rules_aps.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace cpsguard::safety {
namespace {

using sim::ControlAction;

WindowContext ctx(double bg, double d_bg, double d_iob, ControlAction a) {
  WindowContext c;
  c.bg = bg;
  c.d_bg = d_bg;
  c.d_iob = d_iob;
  c.action = a;
  return c;
}

bool rule_fires(int id, const WindowContext& c) {
  for (const auto& r : aps_safety_rules()) {
    if (r.id == id) return r.formula->eval(context_signals(c), 0);
  }
  ADD_FAILURE() << "unknown rule id " << id;
  return false;
}

TEST(ApsRules, ExactlyTwelveRulesWithMetadata) {
  const auto rules = aps_safety_rules();
  ASSERT_EQ(rules.size(), 12u);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(rules[i].id, static_cast<int>(i) + 1);
    EXPECT_NE(rules[i].hazard, HazardType::kNone);
    EXPECT_FALSE(rules[i].description.empty());
    EXPECT_NE(rules[i].formula, nullptr);
  }
}

TEST(ApsRules, HazardAssignmentsMatchTableI) {
  const auto rules = aps_safety_rules();
  // Rules 1-5 and 9, 11 imply H2; rules 6-8, 10, 12 imply H1.
  for (const auto& r : rules) {
    const bool h2_expected =
        (r.id >= 1 && r.id <= 5) || r.id == 9 || r.id == 11;
    EXPECT_EQ(r.hazard, h2_expected ? HazardType::kH2TooLittleInsulin
                                    : HazardType::kH1TooMuchInsulin)
        << "rule " << r.id;
  }
}

// One positive context per rule (BGT = 120 default).
TEST(ApsRules, Rule1Fires) {
  EXPECT_TRUE(rule_fires(1, ctx(180, +0.5, -0.01, ControlAction::kDecreaseInsulin)));
}
TEST(ApsRules, Rule2Fires) {
  EXPECT_TRUE(rule_fires(2, ctx(180, +0.5, 0.0, ControlAction::kDecreaseInsulin)));
}
TEST(ApsRules, Rule3Fires) {
  EXPECT_TRUE(rule_fires(3, ctx(180, -0.5, +0.01, ControlAction::kDecreaseInsulin)));
}
TEST(ApsRules, Rule4Fires) {
  EXPECT_TRUE(rule_fires(4, ctx(180, -0.5, -0.01, ControlAction::kDecreaseInsulin)));
}
TEST(ApsRules, Rule5Fires) {
  EXPECT_TRUE(rule_fires(5, ctx(180, -0.5, 0.0, ControlAction::kDecreaseInsulin)));
}
TEST(ApsRules, Rule6Fires) {
  EXPECT_TRUE(rule_fires(6, ctx(100, -0.5, +0.01, ControlAction::kIncreaseInsulin)));
}
TEST(ApsRules, Rule7Fires) {
  EXPECT_TRUE(rule_fires(7, ctx(100, -0.5, -0.01, ControlAction::kIncreaseInsulin)));
}
TEST(ApsRules, Rule8Fires) {
  EXPECT_TRUE(rule_fires(8, ctx(100, -0.5, 0.0, ControlAction::kIncreaseInsulin)));
}
TEST(ApsRules, Rule9Fires) {
  EXPECT_TRUE(rule_fires(9, ctx(180, 0.0, 0.0, ControlAction::kStopInsulin)));
}
TEST(ApsRules, Rule10Fires) {
  EXPECT_TRUE(rule_fires(10, ctx(60, 0.0, 0.0, ControlAction::kKeepInsulin)));
  EXPECT_TRUE(rule_fires(10, ctx(60, 0.0, 0.0, ControlAction::kIncreaseInsulin)));
}
TEST(ApsRules, Rule10QuietWhenStopping) {
  EXPECT_FALSE(rule_fires(10, ctx(60, 0.0, 0.0, ControlAction::kStopInsulin)));
}
TEST(ApsRules, Rule11Fires) {
  EXPECT_TRUE(rule_fires(11, ctx(180, +0.5, -0.01, ControlAction::kKeepInsulin)));
  EXPECT_TRUE(rule_fires(11, ctx(180, +0.5, 0.0, ControlAction::kKeepInsulin)));
}
TEST(ApsRules, Rule12Fires) {
  EXPECT_TRUE(rule_fires(12, ctx(100, -0.5, +0.01, ControlAction::kKeepInsulin)));
  EXPECT_TRUE(rule_fires(12, ctx(100, -0.5, 0.0, ControlAction::kKeepInsulin)));
}

TEST(ApsRules, SafeContextsFireNothing) {
  // In range, stable, keeping insulin: no rule should fire.
  const auto safe1 = ctx(120, 0.0, 0.0, ControlAction::kKeepInsulin);
  EXPECT_TRUE(firing_rules(safe1).empty());
  // Hyperglycemic but correctly increasing insulin.
  const auto safe2 = ctx(200, +0.5, +0.01, ControlAction::kIncreaseInsulin);
  EXPECT_TRUE(firing_rules(safe2).empty());
  // Heading low and correctly decreasing.
  const auto safe3 = ctx(100, -0.5, -0.01, ControlAction::kDecreaseInsulin);
  EXPECT_TRUE(firing_rules(safe3).empty());
}

TEST(ApsRules, IndicatorEqualsDisjunction) {
  const auto disj = unsafe_action_disjunction();
  const std::vector<WindowContext> contexts = {
      ctx(180, +0.5, -0.01, ControlAction::kDecreaseInsulin),
      ctx(120, 0.0, 0.0, ControlAction::kKeepInsulin),
      ctx(60, 0.0, 0.0, ControlAction::kKeepInsulin),
      ctx(200, +0.5, +0.01, ControlAction::kIncreaseInsulin),
  };
  for (const auto& c : contexts) {
    EXPECT_EQ(semantic_indicator(c),
              disj->eval(context_signals(c), 0) ? 1 : 0);
  }
}

TEST(ApsRules, IndicatorRespectsBgTarget) {
  // BG 130 with falling trend and increase action: unsafe iff BGT above 130.
  const auto c = ctx(130, -0.5, 0.0, ControlAction::kIncreaseInsulin);
  EXPECT_EQ(semantic_indicator(c, 140.0), 1);  // BG < BGT → rule 8
  EXPECT_EQ(semantic_indicator(c, 120.0), 0);  // BG > BGT, no u2 rule matches
}

TEST(ApsRules, DerivativeDeadBandTreatedAsZero) {
  // |dIOB| below the dead-band counts as "= 0" (rule 2, not rule 1).
  const auto c = ctx(180, +0.5, kDiobZeroEps / 2, ControlAction::kDecreaseInsulin);
  const auto firing = firing_rules(c);
  EXPECT_NE(std::find(firing.begin(), firing.end(), 2), firing.end());
  EXPECT_EQ(std::find(firing.begin(), firing.end(), 1), firing.end());
}

TEST(ApsRules, ContextSignalsCarryOneHotAction) {
  const auto st = context_signals(ctx(120, 0, 0, ControlAction::kStopInsulin));
  EXPECT_DOUBLE_EQ(st.value("u3", 0), 1.0);
  EXPECT_DOUBLE_EQ(st.value("u1", 0), 0.0);
  EXPECT_DOUBLE_EQ(st.value("u2", 0), 0.0);
  EXPECT_DOUBLE_EQ(st.value("u4", 0), 0.0);
  EXPECT_DOUBLE_EQ(st.value("BG", 0), 120.0);
}

TEST(ApsRules, RejectsBadBgTarget) {
  EXPECT_THROW(aps_safety_rules(50.0), cpsguard::ContractViolation);
}

}  // namespace
}  // namespace cpsguard::safety

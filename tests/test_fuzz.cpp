// The fuzz subsystem's own tests: mutator/driver determinism, target
// contracts on their seed inputs, corpus plumbing, differential-oracle
// cleanliness, and the committed-corpus regression gate (replay every
// tests/corpus case + registry <-> disk agreement).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/driver.h"
#include "fuzz/mutator.h"
#include "fuzz/oracles.h"
#include "fuzz/target.h"
#include "util/error.h"
#include "util/rng.h"

namespace cpsguard::fuzz {
namespace {

namespace fs = std::filesystem;

const std::vector<std::string> kDict = {"G[", "true", "&&", "0.5"};

// ---- mutators --------------------------------------------------------------

TEST(ByteMutator, DeterministicUnderSameSeed) {
  ByteMutator m1(util::Rng(7));
  ByteMutator m2(util::Rng(7));
  std::string in = "BG > 180 && u3 > 0.5";
  for (int i = 0; i < 200; ++i) {
    const std::string a = m1.mutate(in, kDict);
    const std::string b = m2.mutate(in, kDict);
    ASSERT_EQ(a, b) << "diverged at iteration " << i;
    in = a;  // follow the drift so deep states are compared too
  }
}

TEST(ByteMutator, DifferentSeedsDiverge) {
  ByteMutator m1(util::Rng(7));
  ByteMutator m2(util::Rng(8));
  int diffs = 0;
  for (int i = 0; i < 50; ++i) {
    if (m1.mutate("seed input", kDict) != m2.mutate("seed input", kDict)) ++diffs;
  }
  EXPECT_GT(diffs, 25);
}

TEST(ByteMutator, RespectsLengthCap) {
  ByteMutator m(util::Rng(3));
  std::string in(ByteMutator::kMaxLen, 'a');
  for (int i = 0; i < 500; ++i) {
    in = m.mutate(in, kDict);
    ASSERT_LE(in.size(), ByteMutator::kMaxLen);
  }
}

TEST(ByteMutator, EmptyInputStaysUsable) {
  ByteMutator m(util::Rng(5));
  for (int i = 0; i < 200; ++i) {
    (void)m.mutate("", kDict);  // must not crash or hang
  }
}

TEST(TokenMutator, GeneratesFromDictionaryDeterministically) {
  TokenMutator t1(util::Rng(9));
  TokenMutator t2(util::Rng(9));
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(t1.generate(kDict, 8), t2.generate(kDict, 8));
  }
  TokenMutator t3(util::Rng(9));
  EXPECT_EQ(t3.generate({}, 8), "");  // empty dictionary is not an error
}

// ---- targets ---------------------------------------------------------------

TEST(FuzzTargets, RegistryCoversAllParsers) {
  std::set<std::string> names;
  for (const auto& t : all_targets()) names.insert(t.name);
  const std::set<std::string> expected = {"stl",       "config",
                                          "csv",       "json",
                                          "checkpoint", "serialize",
                                          "model",     "cli"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(find_target("nope"), nullptr);
  ASSERT_NE(find_target("stl"), nullptr);
  EXPECT_EQ(find_target("stl")->name, "stl");
}

TEST(FuzzTargets, SeedInputsAreAccepted) {
  // Every target's seed corpus must be well-formed: a rejected seed means
  // the mutation campaign starts from dead inputs.
  for (const auto& t : all_targets()) {
    ASSERT_FALSE(t.seeds.empty()) << t.name;
    for (std::size_t i = 0; i < t.seeds.size(); ++i) {
      EXPECT_TRUE(t.run(t.seeds[i])) << t.name << " seed " << i;
    }
  }
}

TEST(FuzzTargets, HostileInputsAreTypedRejects) {
  // A sampler of historically fatal inputs; full coverage lives in
  // tests/corpus and the per-module regression tests.
  EXPECT_FALSE(find_target("stl")->run(std::string(300, '(')));
  EXPECT_FALSE(find_target("json")->run("{\"k\":"));
  EXPECT_FALSE(find_target("cli")->run("positional junk"));
  EXPECT_FALSE(find_target("serialize")->run("not a model"));
  EXPECT_FALSE(find_target("checkpoint")->run("cpsguard.checkpoint.v1\n"));
  EXPECT_FALSE(find_target("model")->run("CPSGMDL1 not a real artifact"));
  EXPECT_FALSE(find_target("model")->run(""));
}

// ---- corpus ----------------------------------------------------------------

TEST(Corpus, FilenameIsContentAddressed) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  const std::string name = case_filename("fuzz", "input");
  EXPECT_EQ(name.size(), std::string("fuzz-0123456789abcdef.case").size());
  EXPECT_EQ(name, case_filename("fuzz", "input"));       // stable
  EXPECT_NE(name, case_filename("fuzz", "other input")); // content-addressed
}

TEST(Corpus, SaveLoadListRoundTrip) {
  const fs::path dir = fs::temp_directory_path() / "cpsguard_corpus_test";
  fs::remove_all(dir);
  const std::string payload = std::string("bytes\x00with\x01nul", 14);
  const std::string path = save_case(dir.string(), "stl", "fuzz", payload);
  EXPECT_EQ(load_case(path), payload);
  const auto cases = list_cases(dir.string(), "stl");
  ASSERT_EQ(cases.size(), 1u);
  EXPECT_EQ(cases.front(), path);
  EXPECT_TRUE(list_cases(dir.string(), "json").empty());  // missing dir ok
  EXPECT_THROW(load_case((dir / "absent.case").string()), CpsError);
  fs::remove_all(dir);
}

TEST(Corpus, MinimizeShrinksToTheTrigger) {
  const std::string noisy = "aaaaaaaaaaaaaaaaTRIGGERbbbbbbbbbbbbbbbb";
  const std::string minimal = minimize(noisy, [](const std::string& s) {
    return s.find("TRIGGER") != std::string::npos;
  });
  EXPECT_EQ(minimal, "TRIGGER");
  // Deterministic: same input + predicate, same result.
  EXPECT_EQ(minimal, minimize(noisy, [](const std::string& s) {
              return s.find("TRIGGER") != std::string::npos;
            }));
}

// ---- driver ----------------------------------------------------------------

TEST(FuzzDriver, UnknownTargetThrowsTyped) {
  FuzzOptions opts;
  opts.target = "definitely-not-a-target";
  EXPECT_THROW(run_fuzz(opts), CpsError);
}

TEST(FuzzDriver, CampaignIsDeterministic) {
  FuzzOptions opts;
  opts.target = "stl";
  opts.iters = 400;
  opts.seed = 1234;
  opts.save_repros = false;
  const FuzzStats a = run_fuzz(opts);
  const FuzzStats b = run_fuzz(opts);
  EXPECT_EQ(a.iterations, 400);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.violation_messages, b.violation_messages);
}

TEST(FuzzDriver, ShortCampaignsFindNoViolations) {
  // The standing robustness bar: no registered target breaks its contract
  // under a quick mutation barrage. (CI runs the long version.)
  for (const auto& t : all_targets()) {
    FuzzOptions opts;
    opts.target = t.name;
    opts.iters = 300;
    opts.save_repros = false;
    const FuzzStats stats = run_fuzz(opts);
    EXPECT_TRUE(stats.clean())
        << t.name << ": " << (stats.violation_messages.empty()
                                  ? "?"
                                  : stats.violation_messages.front());
  }
}

// ---- committed-corpus regression gate --------------------------------------

struct RegistryEntry {
  std::string target;
  std::string file;
  std::string why;
};

std::vector<RegistryEntry> registry() {
  std::vector<RegistryEntry> entries;
#define CORPUS_CASE(target, file, why) entries.push_back({target, file, why});
#include "corpus/registry.inc"
#undef CORPUS_CASE
  return entries;
}

TEST(CorpusRegression, EveryCommittedCaseReplaysClean) {
  const FuzzStats stats = replay_corpus(CPSGUARD_CORPUS_DIR, "");
  EXPECT_GE(stats.iterations, 19);  // the corpus only ever grows
  EXPECT_TRUE(stats.clean()) << (stats.violation_messages.empty()
                                     ? "?"
                                     : stats.violation_messages.front());
}

TEST(CorpusRegression, RegistryMatchesDiskExactly) {
  std::set<std::string> registered;
  for (const auto& e : registry()) {
    ASSERT_NE(find_target(e.target), nullptr)
        << "registry names unknown target " << e.target;
    EXPECT_FALSE(e.why.empty()) << e.target << "/" << e.file;
    EXPECT_TRUE(registered.insert(e.target + "/" + e.file).second)
        << "duplicate registry entry " << e.target << "/" << e.file;
  }
  std::set<std::string> on_disk;
  for (const auto& t : all_targets()) {
    for (const auto& path : list_cases(CPSGUARD_CORPUS_DIR, t.name)) {
      on_disk.insert(t.name + "/" + fs::path(path).filename().string());
    }
  }
  EXPECT_EQ(registered, on_disk)
      << "tests/corpus and registry.inc disagree; every *.case needs a "
         "CORPUS_CASE entry and vice versa";
}

// ---- differential oracles --------------------------------------------------

TEST(Oracles, AllRegisteredOraclesRunClean) {
  for (const auto& name : oracle_names()) {
    // batched_predict trains a small monitor on first use; keep the case
    // count test-sized here — CI runs the 1000-case sweep.
    const int cases = name == "batched_predict" ? 20 : 120;
    const OracleReport report = run_oracle(name, cases, 7);
    EXPECT_EQ(report.name, name);
    EXPECT_GE(report.cases, cases);
    EXPECT_TRUE(report.clean()) << name << ": " << report.first_mismatch;
  }
}

TEST(Oracles, DeterministicInSeed) {
  const OracleReport a = run_oracle("cusum", 60, 99);
  const OracleReport b = run_oracle("cusum", 60, 99);
  EXPECT_EQ(a.mismatches, b.mismatches);
  EXPECT_EQ(a.first_mismatch, b.first_mismatch);
}

TEST(Oracles, UnknownNameThrowsTyped) {
  EXPECT_THROW(run_oracle("nope", 1, 0), CpsError);
}

}  // namespace
}  // namespace cpsguard::fuzz

#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.h"

namespace cpsguard::nn {
namespace {

TEST(SoftmaxCrossEntropy, KnownValue) {
  const SoftmaxCrossEntropy ce;
  // Logits (0,0): p = (0.5, 0.5); CE = -log(0.5).
  const Matrix logits = Matrix::from_rows({{0.0f, 0.0f}});
  const std::vector<int> labels = {1};
  const auto r = ce.compute(logits, labels, {});
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionNearZeroLoss) {
  const SoftmaxCrossEntropy ce;
  const Matrix logits = Matrix::from_rows({{20.0f, -20.0f}});
  const std::vector<int> labels = {0};
  EXPECT_LT(ce.compute(logits, labels, {}).loss, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientIsProbsMinusOnehotOverBatch) {
  const SoftmaxCrossEntropy ce;
  const Matrix logits = Matrix::from_rows({{1.0f, -1.0f}, {0.5f, 0.5f}});
  const std::vector<int> labels = {0, 1};
  const auto r = ce.compute(logits, labels, {});
  const Matrix p = softmax_rows(logits);
  EXPECT_NEAR(r.dlogits.at(0, 0), (p.at(0, 0) - 1.0f) / 2.0f, 1e-6);
  EXPECT_NEAR(r.dlogits.at(0, 1), p.at(0, 1) / 2.0f, 1e-6);
  EXPECT_NEAR(r.dlogits.at(1, 1), (p.at(1, 1) - 1.0f) / 2.0f, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientRowsSumToZero) {
  const SoftmaxCrossEntropy ce;
  const Matrix logits = Matrix::from_rows({{0.3f, -0.7f, 1.1f}});
  const std::vector<int> labels = {2};
  const auto r = ce.compute(logits, labels, {});
  float sum = 0.0f;
  for (int c = 0; c < 3; ++c) sum += r.dlogits.at(0, c);
  EXPECT_NEAR(sum, 0.0f, 1e-6);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabel) {
  const SoftmaxCrossEntropy ce;
  const Matrix logits = Matrix::from_rows({{0.0f, 0.0f}});
  const std::vector<int> labels = {2};
  EXPECT_THROW(ce.compute(logits, labels, {}), ContractViolation);
}

TEST(SoftmaxCrossEntropy, RejectsLabelCountMismatch) {
  const SoftmaxCrossEntropy ce;
  const Matrix logits = Matrix::from_rows({{0.0f, 0.0f}});
  const std::vector<int> labels = {0, 1};
  EXPECT_THROW(ce.compute(logits, labels, {}), ContractViolation);
}

TEST(SemanticLoss, ZeroWeightEqualsCrossEntropy) {
  const SoftmaxCrossEntropy ce;
  const SemanticLoss sem(0.0);
  const Matrix logits = Matrix::from_rows({{0.8f, -0.3f}, {-1.0f, 2.0f}});
  const std::vector<int> labels = {0, 1};
  const std::vector<float> targets = {1.0f, 0.0f};
  const auto a = ce.compute(logits, labels, {});
  const auto b = sem.compute(logits, labels, targets);
  EXPECT_NEAR(a.loss, b.loss, 1e-9);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(a.dlogits.at(r, c), b.dlogits.at(r, c), 1e-7);
    }
  }
}

TEST(SemanticLoss, PenaltyEqualsWeightedAbsoluteGap) {
  const SemanticLoss sem(2.0);
  const Matrix logits = Matrix::from_rows({{0.0f, 0.0f}});  // p1 = 0.5
  const std::vector<int> labels = {0};
  // Target 1 → |0.5 - 1| = 0.5 → penalty 2.0 * 0.5 = 1.0 on top of CE.
  const auto with_target_one = sem.compute(logits, labels, std::vector<float>{1.0f});
  const SoftmaxCrossEntropy ce;
  const auto baseline = ce.compute(logits, labels, {});
  EXPECT_NEAR(with_target_one.loss - baseline.loss, 1.0, 1e-6);
}

TEST(SemanticLoss, AgreementCostsNothing) {
  const SemanticLoss sem(5.0);
  // Strongly class-1 logits, semantic target 1: knowledge agrees.
  const Matrix logits = Matrix::from_rows({{-10.0f, 10.0f}});
  const std::vector<int> labels = {1};
  const auto r = sem.compute(logits, labels, std::vector<float>{1.0f});
  EXPECT_LT(r.loss, 1e-4);
}

TEST(SemanticLoss, GradientMatchesFiniteDifference) {
  const SemanticLoss sem(0.8);
  Matrix logits = Matrix::from_rows({{0.4f, -0.2f}, {-0.9f, 1.3f}});
  const std::vector<int> labels = {1, 0};
  const std::vector<float> targets = {0.0f, 1.0f};
  const auto r = sem.compute(logits, labels, targets);
  const double eps = 1e-3;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const float orig = logits.at(i, j);
      logits.at(i, j) = orig + static_cast<float>(eps);
      const double lp = sem.compute(logits, labels, targets).loss;
      logits.at(i, j) = orig - static_cast<float>(eps);
      const double lm = sem.compute(logits, labels, targets).loss;
      logits.at(i, j) = orig;
      EXPECT_NEAR(r.dlogits.at(i, j), (lp - lm) / (2 * eps), 1e-3);
    }
  }
}

TEST(SemanticLoss, PullsProbabilityTowardIndicator) {
  // Gradient on the unsafe logit must be negative (increase p1) when the
  // indicator says unsafe but the model leans safe.
  const SemanticLoss sem(1.0);
  const Matrix logits = Matrix::from_rows({{2.0f, -2.0f}});  // leans safe
  const std::vector<int> labels = {0};  // even the data label agrees with safe
  const auto with_sem = sem.compute(logits, labels, std::vector<float>{1.0f});
  const SoftmaxCrossEntropy ce;
  const auto without = ce.compute(logits, labels, {});
  // Semantic term pushes logit 1 up (more unsafe) relative to plain CE.
  EXPECT_LT(with_sem.dlogits.at(0, 1), without.dlogits.at(0, 1));
}

TEST(SemanticLoss, RequiresTargets) {
  const SemanticLoss sem(1.0);
  const Matrix logits = Matrix::from_rows({{0.0f, 0.0f}});
  const std::vector<int> labels = {0};
  EXPECT_THROW(sem.compute(logits, labels, {}), ContractViolation);
}

TEST(SemanticLoss, RejectsNegativeWeight) {
  EXPECT_THROW(SemanticLoss(-0.1), ContractViolation);
}

TEST(SemanticLoss, RequiresBinaryClassification) {
  const SemanticLoss sem(1.0);
  const Matrix logits = Matrix::from_rows({{0.0f, 0.0f, 0.0f}});
  const std::vector<int> labels = {0};
  const std::vector<float> targets = {1.0f};
  EXPECT_THROW(sem.compute(logits, labels, targets), ContractViolation);
}


TEST(SemanticLossOneSided, NoPenaltyWhereRulesAreSilent) {
  const SemanticLoss sym(3.0, SemanticMode::kSymmetric);
  const SemanticLoss one_sided(3.0, SemanticMode::kUnsafeOnly);
  const SoftmaxCrossEntropy ce;
  // Model leans unsafe, rules silent (s = 0): symmetric punishes, one-sided
  // must not.
  const Matrix logits = Matrix::from_rows({{-2.0f, 2.0f}});
  const std::vector<int> labels = {1};
  const std::vector<float> silent = {0.0f};
  const auto plain = ce.compute(logits, labels, {});
  const auto a = one_sided.compute(logits, labels, silent);
  const auto b = sym.compute(logits, labels, silent);
  EXPECT_NEAR(a.loss, plain.loss, 1e-9);
  EXPECT_GT(b.loss, plain.loss + 1.0);
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(a.dlogits.at(0, c), plain.dlogits.at(0, c), 1e-7);
  }
}

TEST(SemanticLossOneSided, MatchesSymmetricWhereRulesFire) {
  const SemanticLoss sym(1.5, SemanticMode::kSymmetric);
  const SemanticLoss one_sided(1.5, SemanticMode::kUnsafeOnly);
  const Matrix logits = Matrix::from_rows({{0.7f, -0.4f}});
  const std::vector<int> labels = {0};
  const std::vector<float> firing = {1.0f};
  const auto a = one_sided.compute(logits, labels, firing);
  const auto b = sym.compute(logits, labels, firing);
  EXPECT_NEAR(a.loss, b.loss, 1e-9);
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(a.dlogits.at(0, c), b.dlogits.at(0, c), 1e-7);
  }
}

TEST(SemanticLossOneSided, GradientMatchesFiniteDifference) {
  const SemanticLoss loss(0.9, SemanticMode::kUnsafeOnly);
  Matrix logits = Matrix::from_rows({{0.4f, -0.2f}, {-0.9f, 1.3f}});
  const std::vector<int> labels = {1, 0};
  const std::vector<float> targets = {1.0f, 0.0f};
  const auto r = loss.compute(logits, labels, targets);
  const double eps = 1e-3;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      const float orig = logits.at(i, j);
      logits.at(i, j) = orig + static_cast<float>(eps);
      const double lp = loss.compute(logits, labels, targets).loss;
      logits.at(i, j) = orig - static_cast<float>(eps);
      const double lm = loss.compute(logits, labels, targets).loss;
      logits.at(i, j) = orig;
      EXPECT_NEAR(r.dlogits.at(i, j), (lp - lm) / (2 * eps), 1e-3);
    }
  }
}

}  // namespace
}  // namespace cpsguard::nn

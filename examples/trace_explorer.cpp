// Trace explorer: run one closed-loop APS simulation and dump the trace as
// CSV (to stdout or a file), plus a summary of time-in-range, hazards, and
// which Table I safety rules fired. Useful for eyeballing the plants,
// controllers and fault models (the paper's Fig. 1b-style view).
//
//   ./trace_explorer --testbed t1d --fault true --seed 9 --out trace.csv
#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/cpsguard.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string testbed_name = cli.get("testbed", "glucosym");
  const sim::Testbed tb = testbed_name == "t1d"
                              ? sim::Testbed::kT1dBasalBolus
                              : sim::Testbed::kGlucosymOpenAps;
  const bool fault = cli.get_bool("fault", true);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int patient_id = cli.get_int("patient", 0);
  const int steps = cli.get_int("steps", 150);
  const std::string out = cli.get("out", "");

  auto patient = sim::make_patient(tb);
  auto controller = sim::make_controller(tb);
  const auto profiles = sim::testbed_profiles(tb, 20, 42);

  sim::SimConfig cfg;
  cfg.steps = steps;
  cfg.inject_fault = fault;
  util::Rng rng(seed);
  const sim::Trace trace = run_closed_loop(
      *patient, *controller, profiles[static_cast<std::size_t>(patient_id)],
      cfg, rng);

  const std::string csv = sim::trace_to_csv(trace);
  if (out.empty()) {
    std::cout << csv;
  } else {
    std::ofstream f(out);
    f << csv;
  }

  const auto labels = safety::label_trace(trace, cli.get_int("horizon", 12));
  int hazard_steps = 0, labelled = 0;
  for (const auto& r : trace.steps) hazard_steps += sim::in_hazard(r) ? 1 : 0;
  for (int y : labels) labelled += y;

  const safety::RuleBasedMonitor rules;
  int rule_alarms = 0;
  for (const auto& r : trace.steps) rule_alarms += rules.predict_step(r);

  std::fprintf(stderr,
               "testbed=%s patient=%d fault=%s\n"
               "time-in-range=%.1f%% hazard-steps=%d labelled-unsafe=%d "
               "rule-alarms=%d\n",
               sim::to_string(tb).c_str(), patient_id,
               trace.fault_name.c_str(), 100.0 * sim::time_in_range(trace),
               hazard_steps, labelled, rule_alarms);
  return 0;
}

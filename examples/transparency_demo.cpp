// Transparency demo: the paper argues that integrating domain knowledge
// "improves ML explainability by offering simple rules to check the output
// of the ML model". This example makes that concrete: for windows the ML
// monitor flags as unsafe, it prints which Table I STL formulas fire in the
// same context — a human-auditable justification — and reports how often the
// ML monitor and the knowledge base agree.
//
//   ./transparency_demo [--testbed glucosym|t1d] [--examples 5]
#include <cstdio>

#include "core/cpsguard.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);

  const sim::Testbed tb = cli.get("testbed", "glucosym") == "t1d"
                              ? sim::Testbed::kT1dBasalBolus
                              : sim::Testbed::kGlucosymOpenAps;
  core::ExperimentConfig cfg;
  cfg.campaign.testbed = tb;
  cfg.campaign.patients = cli.get_int("patients", 8);
  cfg.campaign.sims_per_patient = cli.get_int("sims", 5);
  cfg.epochs = cli.get_int("epochs", 8);
  cfg.cache_dir = cli.get("cache", "cpsguard_cache");
  const int max_examples = cli.get_int("examples", 5);

  core::Experiment exp(cfg);
  const core::MonitorVariant custom{monitor::Arch::kMlp, true};
  auto& mon = exp.monitor(custom);
  const auto& test = exp.test_data();
  const auto preds = mon.predict(test.x);

  // First, the knowledge base itself.
  std::printf("Table I — context-dependent safety specifications:\n");
  for (const auto& rule : safety::aps_safety_rules()) {
    std::printf("  rule %2d [%s]: %s\n", rule.id,
                to_string(rule.hazard).c_str(), rule.formula->to_string().c_str());
  }

  // Agreement between the ML monitor and the rule disjunction.
  int agree = 0, ml_alarms = 0, explained_alarms = 0;
  for (int i = 0; i < test.size(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    const int rule = static_cast<int>(test.semantic[si]);
    if (preds[si] == rule) ++agree;
    if (preds[si] == 1) {
      ++ml_alarms;
      if (rule == 1) ++explained_alarms;
    }
  }
  std::printf(
      "\n%s on %d test windows: ML/rule agreement %.1f%%, "
      "%.1f%% of ML alarms carry a rule-level explanation\n\n",
      custom.name().c_str(), test.size(),
      100.0 * agree / std::max(1, test.size()),
      100.0 * explained_alarms / std::max(1, ml_alarms));

  // A few concrete explanations.
  int shown = 0;
  for (int i = 0; i < test.size() && shown < max_examples; ++i) {
    const auto si = static_cast<std::size_t>(i);
    if (preds[si] != 1) continue;
    const auto ctx = monitor::window_context(test.x, i);
    const auto firing = safety::firing_rules(ctx);
    if (firing.empty()) continue;
    ++shown;
    std::printf(
        "window %d: BG=%.0f dBG=%+.2f dIOB=%+.4f action=%s -> UNSAFE because",
        i, ctx.bg, ctx.d_bg, ctx.d_iob, to_string(ctx.action).c_str());
    for (const int id : firing) std::printf(" [rule %d]", id);
    std::printf(" (ground truth: %s)\n",
                test.labels[si] ? "hazard ahead" : "no hazard");
  }
  if (shown == 0) {
    std::printf("no rule-explained alarms in this test slice\n");
  }
  return 0;
}

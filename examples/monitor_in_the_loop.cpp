// Monitor-in-the-loop: the deployment scenario of the paper's Fig. 1 —
// a trained ML safety monitor watches a live closed-loop APS simulation,
// classifying every 5-minute control cycle as safe/unsafe in real time.
// Prints a timeline showing monitor alarms relative to actual hazards and
// the alarm lead time.
//
//   ./monitor_in_the_loop [--testbed glucosym|t1d] [--seed 3] [--arch lstm]
#include <cstdio>
#include <string>

#include "core/cpsguard.h"
#include "monitor/features.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);

  const sim::Testbed tb = cli.get("testbed", "glucosym") == "t1d"
                              ? sim::Testbed::kT1dBasalBolus
                              : sim::Testbed::kGlucosymOpenAps;
  core::ExperimentConfig cfg;
  cfg.campaign.testbed = tb;
  cfg.campaign.patients = cli.get_int("patients", 8);
  cfg.campaign.sims_per_patient = cli.get_int("sims", 5);
  cfg.epochs = cli.get_int("epochs", 8);
  cfg.cache_dir = cli.get("cache", "cpsguard_cache");

  const core::MonitorVariant variant{
      cli.get("arch", "lstm") == "mlp" ? monitor::Arch::kMlp
                                       : monitor::Arch::kLstm,
      cli.get_bool("semantic", true)};

  core::Experiment exp(cfg);
  auto& mon = exp.monitor(variant);
  std::printf("trained %s monitor for %s\n\n", variant.name().c_str(),
              sim::to_string(tb).c_str());

  // A fresh, unseen simulation with a fault campaign.
  auto patient = sim::make_patient(tb);
  auto controller = sim::make_controller(tb);
  const auto profiles = sim::testbed_profiles(tb, 20, cfg.campaign.seed);
  sim::SimConfig sc;
  sc.steps = cli.get_int("steps", 150);
  sc.inject_fault = true;
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)) ^
                0xfeedULL);
  const sim::Trace trace = run_closed_loop(
      *patient, *controller,
      profiles[static_cast<std::size_t>(cli.get_int("patient", 1))], sc, rng);

  // Stream the trace through the monitor window by window, as a deployed
  // monitor would see it.
  const int window = exp.train_data().config.window;
  int first_alarm = -1, first_hazard = -1;
  std::printf("step  true-BG sensor-BG  rate  monitor  reality\n");
  for (int end = window - 1; end < trace.length(); ++end) {
    nn::Tensor3 w(1, window, monitor::Features::kNumFeatures);
    for (int k = 0; k < window; ++k) {
      monitor::fill_features(
          trace.steps[static_cast<std::size_t>(end - window + 1 + k)],
          w.row(0, k));
    }
    const int alarm = mon.predict(w)[0];
    const auto& r = trace.steps[static_cast<std::size_t>(end)];
    const bool hazard = sim::in_hazard(r);
    if (alarm && first_alarm < 0) first_alarm = end;
    if (hazard && first_hazard < 0) first_hazard = end;
    if (alarm || hazard || end % 12 == 0) {
      std::printf("%4d  %7.1f  %8.1f  %5.2f  %-7s  %s\n", end, r.true_bg,
                  r.sensor_bg, r.commanded_rate, alarm ? "ALARM" : "ok",
                  hazard ? (r.true_bg < sim::kHypoglycemiaBg ? "HYPOGLYCEMIA"
                                                             : "HYPERGLYCEMIA")
                         : "");
    }
  }

  std::printf("\nfault campaign: %s\n", trace.fault_name.c_str());
  if (first_hazard >= 0 && first_alarm >= 0 && first_alarm <= first_hazard) {
    std::printf("first alarm at step %d, first hazard at step %d "
                "-> %d min of warning\n",
                first_alarm, first_hazard, 5 * (first_hazard - first_alarm));
  } else if (first_hazard >= 0) {
    std::printf("hazard at step %d was NOT predicted in time\n", first_hazard);
  } else {
    std::printf("no hazard occurred in this run\n");
  }
  return 0;
}

// Attack toolbox comparison: every implemented attack against one trained
// monitor at the same L∞ budget, reporting the robustness error it induces
// (Eq. 5), the attacker's knowledge requirements, and whether a
// feature-squeezing detector would notice the attack.
//
//   ./attack_comparison [--testbed glucosym|t1d] [--arch lstm|mlp] [--eps 0.1]
#include <cstdio>

#include "core/cpsguard.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kWarn);

  core::ExperimentConfig cfg;
  cfg.campaign.testbed = cli.get("testbed", "glucosym") == "t1d"
                             ? sim::Testbed::kT1dBasalBolus
                             : sim::Testbed::kGlucosymOpenAps;
  cfg.campaign.patients = cli.get_int("patients", 8);
  cfg.campaign.sims_per_patient = cli.get_int("sims", 5);
  cfg.epochs = cli.get_int("epochs", 8);
  cfg.cache_dir = cli.get("cache", "cpsguard_cache");
  const double eps = cli.get_double("eps", 0.1);

  const core::MonitorVariant variant{
      cli.get("arch", "mlp") == "lstm" ? monitor::Arch::kLstm
                                       : monitor::Arch::kMlp,
      /*semantic=*/false};

  core::Experiment exp(cfg);
  auto& mon = exp.monitor(variant);
  const auto& test = exp.test_data();
  const nn::Tensor3 scaled = mon.scaler().transform(test.x);
  const auto clean_preds = mon.predict_scaled(scaled);

  // A detector deployed in front of the monitor, tuned on (clean) training
  // windows at a 5% false-positive budget.
  attack::FeatureSqueezingDetector detector;
  detector.calibrate(mon.classifier(),
                     mon.scaler().transform(exp.train_data().x), 0.95);

  std::printf("attack comparison vs %s on %s (eps=%.2f, %d test windows)\n\n",
              variant.name().c_str(), sim::to_string(cfg.campaign.testbed).c_str(),
              eps, test.size());
  util::Table table({"Attack", "Knowledge", "robust-err", "F1 under attack",
                     "squeeze-detect"});

  auto report = [&](const std::string& name, const std::string& knowledge,
                    const nn::Tensor3& adv) {
    const auto preds = mon.predict_scaled(adv);
    const double err = eval::robustness_error(clean_preds, preds);
    const double f1 = exp.evaluate(preds).f1();
    const double det = detector.detection_rate(mon.classifier(), adv);
    table.add_row({name, knowledge, util::Table::fixed(err, 3),
                   util::Table::fixed(f1, 3), util::Table::fixed(det, 3)});
  };

  report("none (clean)", "-", scaled);

  {
    attack::GaussianNoiseConfig gc;
    gc.sigma_factor = 0.5;
    util::Rng rng(1);
    const nn::Tensor3 noisy =
        attack::add_gaussian_noise(test.x, mon.scaler(), gc, rng);
    report("Gaussian 0.5 std", "none (accidental)",
           mon.scaler().transform(noisy));
  }
  {
    attack::FgsmConfig fc;
    fc.epsilon = eps;
    report("FGSM", "white-box",
           attack::fgsm_attack(mon.classifier(), scaled, test.labels, fc));
  }
  {
    attack::PgdConfig pc;
    pc.epsilon = eps;
    pc.step_size = eps / 4.0;
    pc.iterations = 8;
    report("PGD x8", "white-box",
           attack::pgd_attack(mon.classifier(), scaled, test.labels, pc));
  }
  {
    attack::UniversalConfig uc;
    uc.epsilon = eps;
    const nn::Tensor3 delta = attack::craft_universal_perturbation(
        mon.classifier(), mon.scaler().transform(exp.train_data().x),
        exp.train_data().labels, uc);
    report("Universal delta", "white-box (one delta for all inputs)",
           attack::apply_universal_perturbation(scaled, delta));
  }
  {
    attack::SubstituteAttack sub{attack::SubstituteConfig{}};
    sub.fit(mon.classifier(), mon.scaler().transform(exp.train_data().x));
    attack::FgsmConfig fc;
    fc.epsilon = eps;
    report("Substitute FGSM", "black-box (query + train surrogate)",
           sub.craft(scaled, clean_preds, fc));
  }
  {
    attack::NesConfig nc;
    nc.epsilon = eps;
    report("NES", "black-box (query scores only)",
           attack::nes_attack(mon.classifier(), scaled, clean_preds, nc));
  }

  table.print();
  std::printf("\nsqueeze-detect: fraction flagged by a feature-squeezing "
              "detector calibrated at 5%% clean false positives\n");
  return 0;
}

// Quickstart: the whole pipeline in one page.
//
// Simulates a small closed-loop APS campaign, trains a baseline LSTM monitor
// and its knowledge-augmented LSTM-Custom twin, then compares their accuracy
// on clean data and their robustness under a white-box FGSM attack.
//
//   ./quickstart [--sims 6] [--patients 8] [--epochs 6] [--eps 0.1]
#include <cstdio>

#include "core/cpsguard.h"

using namespace cpsguard;

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  util::set_log_level(util::LogLevel::kInfo);

  core::ExperimentConfig cfg;
  cfg.campaign.testbed = cli.get("testbed", "glucosym") == "t1d"
                             ? sim::Testbed::kT1dBasalBolus
                             : sim::Testbed::kGlucosymOpenAps;
  cfg.campaign.patients = cli.get_int("patients", 8);
  cfg.campaign.sims_per_patient = cli.get_int("sims", 6);
  cfg.epochs = cli.get_int("epochs", 6);
  cfg.dataset.horizon = cli.get_int("horizon", 12);
  cfg.semantic_weight_lstm = cli.get_double("w", 1.0);
  cfg.semantic_weight_mlp = cli.get_double("w", 0.5);
  cfg.tolerance_delta = cli.get_int("delta", 6);
  cfg.cache_dir = cli.get("cache", "");  // no caching by default here
  const double eps = cli.get_double("eps", 0.1);

  core::Experiment exp(cfg);
  exp.prepare();

  std::printf("campaign: %d traces, train=%d test=%d windows (%.1f%% unsafe)\n",
              static_cast<int>(exp.traces().size()), exp.train_data().size(),
              exp.test_data().size(),
              100.0 * exp.train_data().positive_fraction());

  const core::MonitorVariant baseline{monitor::Arch::kLstm, false};
  const core::MonitorVariant custom{monitor::Arch::kLstm, true};

  for (const auto& variant : {baseline, custom}) {
    const auto clean = exp.evaluate_clean(variant);
    const auto attacked = exp.evaluate_under_fgsm(variant, eps);
    std::printf(
        "%-12s clean: ACC=%.3f F1=%.3f | FGSM(eps=%.2f): F1=%.3f "
        "robustness-error=%.3f\n",
        variant.name().c_str(), clean.accuracy(), clean.f1(), eps,
        attacked.f1(), attacked.robustness_err);
  }

  const auto rule = exp.evaluate_rule_monitor();
  std::printf("%-12s clean: ACC=%.3f F1=%.3f (knowledge only)\n", "Rule-based",
              rule.accuracy(), rule.f1());
  return 0;
}
